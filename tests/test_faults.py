"""Fault tolerance: injector determinism, retries, budgets, salvage.

Covers the chaos-harness substrate (`repro.faults`), the scheduler's
retry/serial-fallback ladder, the engine's decode error budget, v1
container back-compat, sparse-id recovery, and the end-to-end salvage
acceptance scenario: corrupt one blob on disk, load in salvage mode,
and get a degraded-but-correct-subset join out of it.
"""

import json

import pytest

from repro.compression import PPVPEncoder
from repro.compression.serialize import serialized_segment_sizes
from repro.core import EngineConfig, ThreeDPro
from repro.core.errors import (
    CuboidFormatError,
    DatasetFormatError,
    ErrorBudgetExceededError,
    TaskExecutionError,
)
from repro.faults import FaultInjector, InjectedFault
from repro.mesh import icosphere
from repro.parallel.tasks import TaskScheduler
from repro.storage import Dataset, load_dataset, save_dataset
from repro.storage.fileformat import read_cuboid_file, write_cuboid_file


class TestFaultInjector:
    @staticmethod
    def _decode_pattern(inj, n=64):
        out = []
        for i in range(n):
            try:
                inj.before_decode("ds", i, 0)
                out.append(False)
            except InjectedFault:
                out.append(True)
        return out

    def test_decisions_are_pure_functions_of_seed_and_key(self):
        a = FaultInjector(seed=3, decode_error_rate=0.5)
        b = FaultInjector(seed=3, decode_error_rate=0.5)
        pattern = self._decode_pattern(a)
        assert pattern == self._decode_pattern(b)
        assert any(pattern) and not all(pattern)
        assert self._decode_pattern(FaultInjector(seed=4, decode_error_rate=0.5)) != pattern

    def test_counts_track_fired_faults(self):
        inj = FaultInjector(seed=3, decode_error_rate=0.5)
        fired = sum(self._decode_pattern(inj))
        assert inj.counts["decode"] == fired == inj.total_injected

    def test_corrupt_blob_flips_exactly_one_bit(self):
        inj = FaultInjector(seed=1, blob_flip_rate=1.0)
        blob = bytes(range(256))
        out = inj.corrupt_blob(blob, key="k")
        assert len(out) == len(blob) and out != blob
        diffs = [x ^ y for x, y in zip(blob, out) if x != y]
        assert len(diffs) == 1 and bin(diffs[0]).count("1") == 1
        # same seed + key -> same flip
        assert FaultInjector(seed=1, blob_flip_rate=1.0).corrupt_blob(blob, key="k") == out

    def test_max_faults_caps_total(self):
        inj = FaultInjector(seed=0, task_error_rate=1.0, max_faults=2)
        fired = 0
        for i in range(10):
            try:
                inj.before_task(i, 0)
            except InjectedFault:
                fired += 1
        assert fired == 2 and inj.total_injected == 2

    def test_concurrent_fires_count_exactly(self):
        # Regression: counts was a bare read-modify-write, so two
        # threads firing at once could lose an increment.
        import threading

        inj = FaultInjector(seed=0, task_error_rate=1.0)
        threads, per_thread = 8, 200

        def worker(base):
            for i in range(per_thread):
                with pytest.raises(InjectedFault):
                    inj.before_task(base * per_thread + i, 0)

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert inj.counts["task"] == threads * per_thread

    def test_concurrent_max_faults_never_overshoots(self):
        import threading

        cap = 50
        inj = FaultInjector(seed=0, task_error_rate=1.0, max_faults=cap)
        fired = [0] * 8

        def worker(slot):
            for i in range(200):
                try:
                    inj.before_task(slot * 200 + i, 0)
                except InjectedFault:
                    fired[slot] += 1

        pool = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert sum(fired) == cap == inj.total_injected

    def test_pickle_roundtrip_preserves_decisions(self):
        import pickle

        inj = FaultInjector(seed=3, decode_error_rate=0.5, worker_kill_rate=0.4)
        clone = pickle.loads(pickle.dumps(inj))
        assert self._decode_pattern(clone) == self._decode_pattern(
            FaultInjector(seed=3, decode_error_rate=0.5)
        )
        # the lock is recreated, not shared, and still guards counts
        assert clone._lock is not inj._lock
        clone._fire("task", 1.0, "k")
        assert clone.counts["task"] == 1

    def test_decode_delay_is_deterministic_and_counted(self):
        inj = FaultInjector(
            seed=2, decode_delay_rate=0.5, decode_delay_seconds=0.001
        )
        for i in range(32):
            inj.before_decode("ds", i, 0)
        fired = inj.counts.get("decode_delay", 0)
        assert 0 < fired < 32
        twin = FaultInjector(
            seed=2, decode_delay_rate=0.5, decode_delay_seconds=0.001
        )
        for i in range(32):
            twin.before_decode("ds", i, 0)
        assert twin.counts.get("decode_delay", 0) == fired

    def test_hang_only_fires_at_chunk_scope(self):
        # Hangs are injected in before_chunk (worker processes), never
        # before_task — an in-process task hang would stall the parent,
        # which has no supervisor above it.
        inj = FaultInjector(seed=2, task_hang_rate=1.0, task_hang_seconds=0.001)
        for i in range(8):
            inj.before_task(i, 0)
        assert inj.counts.get("chunk_hang", 0) == 0
        inj.before_chunk("label:0", 0)
        assert inj.counts.get("chunk_hang", 0) == 1

    def test_before_chunk_hang_keyed_by_attempt(self):
        # worker_kill_rate stays 0 here — a real kill would SIGKILL the
        # test process. The hang side shares task_hang_* knobs.
        inj = FaultInjector(seed=2, task_hang_rate=0.6, task_hang_seconds=0.001)
        first = [
            inj._roll("chunk_hang", f"c:{i}:0") < 0.6 for i in range(16)
        ]
        retry = [
            inj._roll("chunk_hang", f"c:{i}:1") < 0.6 for i in range(16)
        ]
        assert any(first)
        assert first != retry, "retries must re-roll, not repeat the fault"
        for i in range(16):
            inj.before_chunk(f"c:{i}", 0)
        assert inj.counts.get("chunk_hang", 0) == sum(first)


class TestSchedulerRetry:
    def test_retry_recovers_from_transient_failure(self):
        inj = FaultInjector(seed=0, task_error_rate=1.0, max_faults=1)
        sched = TaskScheduler(workers=1, max_retries=2, fault_injector=inj)
        assert sched.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        assert sched.retries == 1
        assert inj.counts["task"] == 1

    def test_retries_exhausted_raises_task_execution_error(self):
        inj = FaultInjector(seed=0, task_error_rate=1.0)
        sched = TaskScheduler(workers=1, max_retries=2, fault_injector=inj)
        with pytest.raises(TaskExecutionError, match="after 3 attempt"):
            sched.map(lambda x: x, [1])

    def test_pool_failures_fall_back_to_serial_retry(self):
        inj = FaultInjector(seed=0, task_error_rate=1.0, max_faults=1)
        sched = TaskScheduler(workers=2, max_retries=2, fault_injector=inj)
        assert sched.map(lambda x: x + 1, [0, 1, 2, 3]) == [1, 2, 3, 4]
        assert sched.serial_fallbacks == 1

    def test_real_exceptions_are_retried_too(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return x

        sched = TaskScheduler(workers=1, max_retries=1)
        assert sched.map(flaky, [7]) == [7]
        assert sched.retries == 1


class TestErrorBudget:
    def test_budget_exceeded_raises_cleanly(self, datasets):
        inj = FaultInjector(seed=5, decode_error_rate=1.0)
        engine = ThreeDPro(EngineConfig(fault_injector=inj, max_decode_failures=0))
        engine.load_dataset(datasets["nuclei_a"])
        engine.load_dataset(datasets["nuclei_b"])
        with pytest.raises(ErrorBudgetExceededError):
            engine.intersection_join("nuclei_a", "nuclei_b")

    def test_no_budget_means_no_limit(self, datasets):
        inj = FaultInjector(seed=5, decode_error_rate=1.0)
        engine = ThreeDPro(EngineConfig(fault_injector=inj))
        engine.load_dataset(datasets["nuclei_a"])
        engine.load_dataset(datasets["nuclei_b"])
        res = engine.intersection_join("nuclei_a", "nuclei_b")
        # every decode fails at every LOD -> nothing can be confirmed
        assert res.pairs == {}
        assert res.stats.degraded_objects > 0


@pytest.fixture()
def tiny_dataset_dir(tmp_path):
    """Three spheres in a single-cuboid dataset, saved to disk."""
    spheres = [icosphere(1, center=(4.0 * i, 0.0, 0.0)) for i in range(3)]
    ds = Dataset.from_polyhedra(
        "tiny", spheres, PPVPEncoder(max_lods=3), grid_shape=(1, 1, 1)
    )
    directory = tmp_path / "tiny"
    # This fixture's tests rewrite v2 container bytes directly; pin the
    # layout so a REPRO_STORAGE_BACKEND=shard run exercises what they test.
    save_dataset(ds, directory, layout="legacy")
    return directory


def _single_file(directory):
    manifest = json.loads((directory / "manifest.json").read_text())
    assert len(manifest["files"]) == 1
    return directory / manifest["files"][0]


class TestSparseAndMissingIds:
    def test_v1_container_roundtrip(self, tmp_path):
        path = tmp_path / "legacy.3dpc"
        write_cuboid_file(path, [b"alpha", b"beta-beta"], [0, 1], version=1)
        assert read_cuboid_file(path) == [(0, b"alpha"), (1, b"beta-beta")]

    def test_sparse_ids_strict_raises_salvage_renumbers(self, tiny_dataset_dir):
        path = _single_file(tiny_dataset_dir)
        pairs = read_cuboid_file(path)
        gapped = pairs[0][0] + 100
        ids = [gapped] + [oid for oid, _ in pairs[1:]]
        write_cuboid_file(path, [blob for _, blob in pairs], ids)

        with pytest.raises(DatasetFormatError, match="contiguous"):
            load_dataset(tiny_dataset_dir)

        ds = load_dataset(tiny_dataset_dir, mode="salvage")
        assert len(ds.objects) == 3
        assert sorted(ds.load_report.id_map.values()) == [0, 1, 2]
        assert ds.load_report.id_map[gapped] == 2  # gapped id packed to the end

    def test_missing_object_strict_raises_salvage_drops(self, tiny_dataset_dir):
        path = _single_file(tiny_dataset_dir)
        pairs = read_cuboid_file(path)
        write_cuboid_file(
            path, [blob for _, blob in pairs[1:]], [oid for oid, _ in pairs[1:]]
        )

        with pytest.raises(DatasetFormatError, match="promises 3"):
            load_dataset(tiny_dataset_dir)

        ds = load_dataset(tiny_dataset_dir, mode="salvage")
        report = ds.load_report
        assert len(ds.objects) == 2
        assert not report.ok
        kept = sorted(oid for oid, _ in pairs[1:])
        assert report.id_map == {oid: i for i, oid in enumerate(kept)}


class TestSalvageEndToEnd:
    """The acceptance scenario: flip one payload byte of one blob on
    disk, then strict load must refuse, salvage load must recover the
    object's intact lower LODs, and a join over the salvaged dataset
    must complete with degraded-but-correct-subset answers."""

    @pytest.fixture()
    def salvage_setup(self, datasets, tmp_path):
        clean = ThreeDPro(EngineConfig())
        clean.load_dataset(datasets["nuclei_a"])
        clean.load_dataset(datasets["nuclei_b"])
        ref = clean.intersection_join("nuclei_a", "nuclei_b")
        victim = min(tid for tid, sids in ref.pairs.items() if sids)

        directory = tmp_path / "nuclei_a"
        # Byte-level container surgery below is v2-specific; pin the layout.
        save_dataset(datasets["nuclei_a"], directory, layout="legacy")

        manifest = json.loads((directory / "manifest.json").read_text())
        for filename in manifest["files"]:
            pairs = dict(read_cuboid_file(directory / filename))
            if victim in pairs:
                blob = pairs[victim]
                break
        else:
            raise AssertionError(f"object {victim} not found in any cuboid file")

        # Flip one byte inside the victim's *first round* segment: the
        # base mesh and the later rounds stay intact, so salvage keeps a
        # shorter-but-exact LOD ladder instead of dropping the object.
        sizes = serialized_segment_sizes(blob)
        assert sizes["rounds"], "victim must have at least one refinement round"
        inner = sizes["header"] + sizes["base"] + 1
        path = directory / filename
        data = bytearray(path.read_bytes())
        fpos = data.find(blob)
        assert fpos != -1, "blob bytes not found verbatim in container"
        data[fpos + inner] ^= 0x01
        path.write_bytes(bytes(data))
        return directory, filename, victim, ref

    def test_strict_load_refuses_corruption(self, salvage_setup):
        directory, _, _, _ = salvage_setup
        with pytest.raises(CuboidFormatError):
            load_dataset(directory)

    def test_salvage_load_reports_accurately(self, salvage_setup):
        directory, filename, victim, _ = salvage_setup
        ds = load_dataset(directory, mode="salvage")
        report = ds.load_report

        assert not report.ok
        assert report.container_faults == [filename]
        assert report.objects_loaded == report.objects_expected
        assert not report.quarantined_files and not report.skipped_blobs
        # nothing was dropped, so renumbering is the identity
        assert all(orig == new for orig, new in report.id_map.items())
        assert [entry[0] for entry in report.degraded_objects] == [victim]
        assert ds.degraded_ids == {victim}
        # the salvaged object lost rounds but kept a decodable ladder
        assert ds.objects[victim].max_lod >= 0

    def test_join_over_salvaged_dataset_is_correct_subset(self, salvage_setup, datasets):
        directory, _, victim, ref = salvage_setup
        ds = load_dataset(directory, mode="salvage")

        engine = ThreeDPro(EngineConfig())
        engine.load_dataset(ds)
        engine.load_dataset(datasets["nuclei_b"])
        res = engine.intersection_join("nuclei_a", "nuclei_b")

        assert res.stats.degraded_objects > 0
        assert victim in res.degraded_targets
        id_map = ds.load_report.id_map  # identity here, but translate anyway
        inverse = {new: orig for orig, new in id_map.items()}
        for tid, sids in res.pairs.items():
            assert set(sids) <= set(ref.pairs.get(inverse[tid], ()))
