"""Tests for the PPMC baseline and its (intentionally) broken guarantees."""

import numpy as np
import pytest

from repro.compression import PPMCEncoder, PPVPEncoder
from repro.mesh import mesh_volume, validate_polyhedron
from tests.test_compression_classify import dented_icosphere


@pytest.fixture(scope="module")
def dented():
    mesh, _ = dented_icosphere(subdivisions=2, dent_fraction=0.3, dent_scale=0.5)
    return mesh


class TestPPMC:
    def test_roundtrip_still_exact(self, dented):
        obj = PPMCEncoder(max_lods=4).encode(dented)
        restored = obj.decode(obj.max_lod)
        assert restored.canonical_face_set() == dented.canonical_face_set()

    def test_lods_structurally_valid(self, dented):
        obj = PPMCEncoder(max_lods=4).encode(dented)
        for lod in obj.lods:
            validate_polyhedron(obj.decode(lod).compacted())

    def test_ppmc_prunes_recessing_vertices_ppvp_skips(self, dented):
        """PPMC may remove any vertex; PPVP must leave deep pit vertices
        in place until the surrounding surface erodes. In round one (the
        original surface), pit vertices are recessing for *every* fan,
        so PPVP's first round must avoid them while PPMC removes some."""
        from repro.compression.classify import RECESSING, classify_vertex
        from repro.mesh.adjacency import MeshAdjacency

        adjacency = MeshAdjacency(dented.faces)
        recessing = {
            v
            for v in range(dented.num_vertices)
            if classify_vertex(dented.vertices, adjacency, v) == RECESSING
        }
        assert recessing

        ppmc = PPMCEncoder(max_lods=4).encode(dented)
        ppmc_round1 = {r.vertex for r in ppmc.rounds[0]}
        assert ppmc_round1 & recessing  # baseline happily fills pits

    def test_ppmc_volume_not_monotone(self, dented):
        """The broken guarantee: PPMC removals may fill pits, so volume is
        not monotone in LOD (while PPVP's is, verified in test_compression_ppvp).

        Filling a pit *increases* volume; cutting a bump decreases it. On
        a heavily dented sphere, some decoded sequence must exhibit a
        volume overshoot above the immediately-finer LOD, or end with a
        base mesh bigger than a pruning-only codec would allow.
        """
        ppmc = PPMCEncoder(max_lods=4).encode(dented)
        ppvp = PPVPEncoder(max_lods=4).encode(dented)
        ppmc_vols = [mesh_volume(ppmc.decode(lod)) for lod in ppmc.lods]
        ppvp_vols = [mesh_volume(ppvp.decode(lod)) for lod in ppvp.lods]
        # PPVP is monotone by construction.
        assert all(a <= b + 1e-12 for a, b in zip(ppvp_vols, ppvp_vols[1:]))
        # PPMC's base volume exceeds PPVP's base volume: pits got filled.
        overshoot = any(
            a > b + 1e-12 for a, b in zip(ppmc_vols, ppmc_vols[1:])
        )
        filled_pits = ppmc_vols[0] > ppvp_vols[0] + 1e-12
        assert overshoot or filled_pits
