"""Tests for the benchmark harness (workloads, runner, reporting)."""

import pytest

from repro.bench.reporting import PAPER_TABLE1, format_breakdown, format_table, speedup
from repro.bench.runner import ACCEL_VARIANTS, TESTS, TestSpec, make_engine, run_test
from repro.bench.workloads import SCALES, Workload, bench_scale
from repro.core import QueryStats


class TestScales:
    def test_default_scale_is_tiny(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "tiny"

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert bench_scale().name == "small"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            bench_scale()

    def test_scales_grow(self):
        assert (
            SCALES["tiny"].n_nuclei
            < SCALES["small"].n_nuclei
            < SCALES["medium"].n_nuclei
        )


class TestSpecs:
    def test_five_paper_tests(self):
        assert set(TESTS) == {"INT-NN", "WN-NN", "WN-NV", "NN-NN", "NN-NV"}

    def test_distance_only_for_within(self, datasets):
        workload = Workload(
            scale=SCALES["tiny"],
            datasets=datasets,
            raw={},
            within_nn=1.5,
            within_nv=9.0,
        )
        assert TESTS["INT-NN"].distance_for(workload) is None
        assert TESTS["WN-NN"].distance_for(workload) == 1.5
        assert TESTS["WN-NV"].distance_for(workload) == 9.0

    def test_accel_variants_match_paper_columns(self):
        assert set(ACCEL_VARIANTS) == {"B", "P", "A", "G", "P+G"}

    def test_paper_table_covers_all_base_cells(self):
        for test_id in TESTS:
            for paradigm in ("fr", "fpr"):
                for accel in ("B", "P", "A", "G"):
                    assert (test_id, paradigm, accel) in PAPER_TABLE1


class TestRunner:
    @pytest.fixture(scope="class")
    def workload(self, datasets):
        return Workload(
            scale=SCALES["tiny"],
            datasets=datasets,
            raw={},
            within_nn=1.0,
            within_nv=8.0,
        )

    def test_run_each_test(self, workload):
        # profile_lods=False: this exercises the runner plumbing, not the
        # (expensive) Section 6.5 profiling pass.
        for test_id in TESTS:
            result = run_test(test_id, workload, "fpr", "B", profile_lods=False)
            assert result.stats.query == test_id
            assert result.stats.targets == len(workload.datasets["nuclei_a"])

    def test_results_agree_across_paradigms(self, workload):
        fr = run_test("INT-NN", workload, "fr", "B")
        fpr = run_test("INT-NN", workload, "fpr", "B", profile_lods=False)
        assert fr.pairs == fpr.pairs

    def test_profiled_lod_list_cached(self, workload):
        from repro.bench.runner import profiled_lod_list

        first = profiled_lod_list("INT-NN", workload, sample_size=4)
        second = profiled_lod_list("INT-NN", workload, sample_size=4)
        assert first == second
        assert first[-1] == max(first)

    def test_make_engine_with_named_accel(self, workload):
        engine = make_engine("fpr", "P+G", workload=workload)
        assert engine.config.label == "FPR/P+G"


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 123456.0]], title="t"
        )
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "alpha" in out and "123456" in out
        assert len({len(line) for line in lines[1:]}) <= 2  # consistent width

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_format_breakdown_percentages(self):
        stats = QueryStats(
            total_seconds=2.0,
            filter_seconds=0.2,
            decode_seconds=0.8,
            compute_seconds=1.0,
        )
        out = format_breakdown(stats)
        assert "10.0%" in out and "40.0%" in out and "50.0%" in out

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")


class TestExport:
    def test_table1_matrix_and_render(self, tmp_path):
        import json

        from repro.bench.export import (
            load_benchmark_json,
            render_table1,
            table1_matrix,
        )

        payload = {
            "benchmarks": [
                {
                    "extra_info": {
                        "test": "NN-NV",
                        "paradigm": "fpr",
                        "accel": "P+G",
                        "seconds": 0.25,
                        "face_pairs": 1234,
                        "matches": 32,
                    }
                },
                {"extra_info": {"unrelated": True}},
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        records = load_benchmark_json(path)
        matrix = table1_matrix(records)
        assert ("NN-NV", "fpr", "P+G") in matrix
        assert matrix[("NN-NV", "fpr", "P+G")]["paper_seconds"] == 172.3
        text = render_table1(matrix)
        assert "FPR/P+G" in text and "172" in text
