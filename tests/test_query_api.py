"""The unified declarative query API: QuerySpec -> execute() -> QueryResult.

Covers spec validation/normalization, wrapper equivalence, the
deprecation path of the bare single-object query forms, result-shape
behavior, cache eviction, and query-worker resolution.
"""

import pytest

from repro.core import EngineConfig, QueryResult, QuerySpec, ThreeDPro
from repro.core.errors import EngineConfigError
from repro.mesh import icosphere


@pytest.fixture()
def engine(datasets):
    engine = ThreeDPro(EngineConfig(paradigm="fpr"))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(kind="overlap", source="b", target="a").normalized()

    def test_join_requires_target_or_probe(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(kind="intersection", source="b").normalized()

    def test_join_rejects_both_target_and_probe(self):
        probe = icosphere(0)
        with pytest.raises(EngineConfigError):
            QuerySpec(
                kind="intersection", source="b", target="a", probe=probe
            ).normalized()

    def test_within_requires_distance(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(kind="within", source="b", target="a").normalized()

    def test_within_rejects_negative_distance(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(
                kind="within", source="b", target="a", distance=-1.0
            ).normalized()

    def test_distance_only_for_within(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(
                kind="intersection", source="b", target="a", distance=1.0
            ).normalized()

    def test_knn_requires_positive_k(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(kind="knn", source="b", target="a", k=0).normalized()

    def test_k_only_for_knn(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(kind="nn", source="b", target="a", k=2).normalized()

    def test_containment_requires_point(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(kind="containment", source="b").normalized()

    def test_containment_rejects_target(self):
        with pytest.raises(EngineConfigError):
            QuerySpec(
                kind="containment", source="b", target="a", point=(0, 0, 0)
            ).normalized()

    def test_nn_normalizes_to_knn(self):
        spec = QuerySpec(kind="nn", source="b", target="a").normalized()
        assert spec.kind == "knn"
        assert spec.k == 1
        assert spec.label == "nn_join"

    def test_labels(self):
        assert (
            QuerySpec(kind="knn", source="b", target="a", k=3).normalized().label
            == "knn_join(k=3)"
        )
        assert (
            QuerySpec(kind="within", source="b", target="a", distance=1.0)
            .normalized()
            .label
            == "within_join"
        )
        assert (
            QuerySpec(kind="containment", source="b", point=(0, 0, 0))
            .normalized()
            .label
            == "containment_query"
        )


class TestExecuteEquivalence:
    def test_intersection(self, engine):
        via_wrapper = engine.intersection_join("nuclei_a", "nuclei_b")
        via_spec = engine.execute(
            QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a")
        )
        assert isinstance(via_spec, QueryResult)
        assert via_spec.pairs == via_wrapper.pairs
        assert via_spec.stats.query == "intersection_join"

    def test_within(self, engine):
        via_wrapper = engine.within_join("nuclei_a", "nuclei_b", 1.0)
        via_spec = engine.execute(
            QuerySpec(
                kind="within", source="nuclei_b", target="nuclei_a", distance=1.0
            )
        )
        assert via_spec.pairs == via_wrapper.pairs

    def test_nn(self, engine):
        via_wrapper = engine.nn_join("nuclei_a", "vessels")
        via_spec = engine.execute(
            QuerySpec(kind="nn", source="vessels", target="nuclei_a")
        )
        assert via_spec.pairs == via_wrapper.pairs
        assert via_spec.stats.query == "nn_join"

    def test_result_records_spec(self, engine):
        spec = QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a")
        result = engine.execute(spec)
        assert result.spec is not None
        assert result.spec.kind == "intersection"

    def test_tuple_unpacking_compatibility(self, engine):
        pairs, stats = engine.intersection_join("nuclei_a", "nuclei_b")
        assert isinstance(pairs, dict)
        assert stats.query == "intersection_join"


class TestDeprecatedBareForms:
    def test_intersection_query_warns_and_matches_spec_form(
        self, engine, small_scene
    ):
        probe = small_scene.nuclei_a[0]
        with pytest.warns(DeprecationWarning, match="intersection_query"):
            bare = engine.intersection_query("nuclei_b", probe)
        full = engine.execute(
            QuerySpec(kind="intersection", source="nuclei_b", probe=probe)
        )
        assert bare == full.matches

    def test_within_query_warns(self, engine, small_scene):
        probe = small_scene.nuclei_a[1]
        with pytest.warns(DeprecationWarning, match="within_query"):
            bare = engine.within_query("nuclei_b", probe, 1.0)
        full = engine.execute(
            QuerySpec(kind="within", source="nuclei_b", probe=probe, distance=1.0)
        )
        assert bare == full.matches

    def test_nn_query_warns(self, engine, small_scene):
        probe = small_scene.nuclei_a[2]
        with pytest.warns(DeprecationWarning, match="nn_query"):
            bare = engine.nn_query("vessels", probe)
        full = engine.execute(
            QuerySpec(kind="nn", source="vessels", probe=probe)
        )
        assert bare == (full.matches[0] if full.matches else None)

    def test_containment_query_warns(self, engine, small_scene):
        point = tuple(float(x) for x in small_scene.nuclei_b[0].vertices.mean(axis=0))
        with pytest.warns(DeprecationWarning, match="containment_query"):
            bare_matches, bare_stats = engine.containment_query("nuclei_b", point)
        full = engine.execute(
            QuerySpec(kind="containment", source="nuclei_b", point=point)
        )
        assert bare_matches == full.matches
        assert bare_stats.results == full.stats.results

    def test_deprecation_names_removal_version(self, engine, small_scene):
        probe = small_scene.nuclei_a[0]
        with pytest.warns(DeprecationWarning, match="removed in 2.0"):
            engine.intersection_query("nuclei_b", probe)

    def test_probe_spec_returns_stats(self, engine, small_scene):
        """The replacement form keeps the stats the bare form drops."""
        probe = small_scene.nuclei_a[0]
        result = engine.execute(
            QuerySpec(kind="intersection", source="nuclei_b", probe=probe)
        )
        assert result.stats.targets == 1
        assert result.stats.total_seconds > 0


class TestCacheEviction:
    def test_evict_dataset_removes_entries(self, engine):
        engine.intersection_join("nuclei_a", "nuclei_b")
        assert any(key[0] == "nuclei_b" for key in engine.cache._entries)
        engine.cache.evict_dataset("nuclei_b")
        assert not any(key[0] == "nuclei_b" for key in engine.cache._entries)
        assert any(key[0] == "nuclei_a" for key in engine.cache._entries)

    def test_purge_dataset_alias(self, engine):
        engine.intersection_join("nuclei_a", "nuclei_b")
        engine.cache.purge_dataset("nuclei_a")
        assert not any(key[0] == "nuclei_a" for key in engine.cache._entries)


class TestQueryWorkerResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERY_WORKERS", raising=False)
        assert EngineConfig().resolve_query_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_WORKERS", "4")
        assert EngineConfig().resolve_query_workers() == 4

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_WORKERS", "4")
        assert EngineConfig(query_workers=2).resolve_query_workers() == 2

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_WORKERS", "many")
        with pytest.raises(EngineConfigError):
            EngineConfig().resolve_query_workers()

    def test_nonpositive_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_WORKERS", "0")
        with pytest.raises(EngineConfigError):
            EngineConfig().resolve_query_workers()

    def test_nonpositive_config_raises(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(query_workers=0)
