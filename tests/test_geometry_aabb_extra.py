"""Additional AABB invariants: transformation behavior and batch parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, box_maxdist, box_mindist
from repro.geometry.aabb import boxes_maxdist_batch, boxes_mindist_batch


def random_box(rng, scale=10.0):
    lo = rng.uniform(-scale, scale, size=3)
    return AABB(tuple(lo), tuple(lo + rng.uniform(0.01, scale, size=3)))


class TestTranslationInvariance:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_distances_translation_invariant(self, seed):
        rng = np.random.default_rng(seed)
        a, b = random_box(rng), random_box(rng)
        shift = rng.uniform(-100, 100, size=3)

        def moved(box):
            return AABB(
                tuple(np.asarray(box.low) + shift), tuple(np.asarray(box.high) + shift)
            )

        assert box_mindist(a, b) == pytest.approx(box_mindist(moved(a), moved(b)))
        assert box_maxdist(a, b) == pytest.approx(box_maxdist(moved(a), moved(b)))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_mindist_zero_iff_intersecting(self, seed):
        rng = np.random.default_rng(seed)
        a, b = random_box(rng), random_box(rng)
        assert (box_mindist(a, b) == 0.0) == a.intersects(b)


class TestBatchParity:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_batch_kernels_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        query = random_box(rng)
        others = [random_box(rng) for _ in range(17)]
        packed = np.array([list(b.low) + list(b.high) for b in others])
        mind = boxes_mindist_batch(packed, query)
        maxd = boxes_maxdist_batch(packed, query)
        for i, box in enumerate(others):
            assert mind[i] == pytest.approx(box_mindist(query, box))
            assert maxd[i] == pytest.approx(box_maxdist(query, box))


class TestContainmentAlgebra:
    def test_union_is_commutative_and_associative(self):
        rng = np.random.default_rng(3)
        a, b, c = (random_box(rng) for _ in range(3))
        assert a.union(b) == b.union(a)
        assert a.union(b).union(c) == a.union(b.union(c))

    def test_contains_box_transitive(self):
        inner = AABB((0.4, 0.4, 0.4), (0.6, 0.6, 0.6))
        middle = AABB((0.2, 0.2, 0.2), (0.8, 0.8, 0.8))
        outer = AABB((0, 0, 0), (1, 1, 1))
        assert outer.contains_box(middle)
        assert middle.contains_box(inner)
        assert outer.contains_box(inner)

    def test_expanded_contains_original(self):
        rng = np.random.default_rng(4)
        box = random_box(rng)
        assert box.expanded(1.0).contains_box(box)
