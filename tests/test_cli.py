"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import write_off, write_stl
from repro.mesh import icosphere


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    root = tmp_path_factory.mktemp("scene")
    code = main(
        [
            "generate",
            str(root),
            "--nuclei", "10",
            "--vessels", "0",
            "--seed", "3",
            "--region", "40",
        ]
    )
    assert code == 0
    return root


class TestGenerate:
    def test_creates_datasets(self, generated):
        assert (generated / "nuclei_a" / "manifest.json").exists()
        assert (generated / "nuclei_b" / "manifest.json").exists()

    def test_skips_empty_vessels(self, generated):
        assert not (generated / "vessels").exists()


class TestCompressInspectDecode:
    def test_compress_off_and_stl(self, tmp_path, capsys):
        off_path = tmp_path / "a.off"
        stl_path = tmp_path / "b.stl"
        write_off(off_path, icosphere(1, center=(0, 0, 0)))
        write_stl(stl_path, icosphere(1, center=(5, 0, 0)))
        out = tmp_path / "ds"
        assert main(["compress", str(off_path), str(stl_path), "-o", str(out)]) == 0
        assert "compressed 2 meshes" in capsys.readouterr().out

    def test_inspect(self, tmp_path, capsys):
        off_path = tmp_path / "a.off"
        write_off(off_path, icosphere(1))
        out = tmp_path / "ds"
        main(["compress", str(off_path), "-o", str(out)])
        assert main(["inspect", str(out)]) == 0
        text = capsys.readouterr().out
        assert "1 objects" in text
        assert "faces=" in text

    def test_decode_roundtrip(self, tmp_path):
        from repro.io import read_off

        off_path = tmp_path / "a.off"
        mesh = icosphere(1)
        write_off(off_path, mesh)
        out = tmp_path / "ds"
        main(["compress", str(off_path), "-o", str(out)])

        exported = tmp_path / "full.off"
        assert main(["decode", str(out), "--object", "0", "-o", str(exported)]) == 0
        assert read_off(exported).num_faces == mesh.num_faces

        coarse = tmp_path / "coarse.stl"
        assert main(["decode", str(out), "--lod", "0", "-o", str(coarse)]) == 0

    def test_decode_bad_object(self, tmp_path):
        off_path = tmp_path / "a.off"
        write_off(off_path, icosphere(1))
        out = tmp_path / "ds"
        main(["compress", str(off_path), "-o", str(out)])
        with pytest.raises(SystemExit):
            main(["decode", str(out), "--object", "9", "-o", str(tmp_path / "x.off")])

    def test_unsupported_format(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compress", str(tmp_path / "mesh.obj"), "-o", str(tmp_path / "d")])


class TestQueryAndProfile:
    def test_nn_query(self, generated, capsys):
        code = main(
            ["query", str(generated / "nuclei_a"), str(generated / "nuclei_b"), "--query", "nn"]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "nn_join" in text
        assert "target 0" in text

    def test_intersection_query_with_accel(self, generated, capsys):
        code = main(
            [
                "query",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "intersection",
                "--paradigm", "fr",
                "--accel", "aabb",
            ]
        )
        assert code == 0
        assert "intersection_join" in capsys.readouterr().out

    def test_within_requires_distance(self, generated):
        with pytest.raises(SystemExit):
            main(
                ["query", str(generated / "nuclei_a"), str(generated / "nuclei_b"), "--query", "within"]
            )

    def test_within_query(self, generated, capsys):
        code = main(
            [
                "query",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "within",
                "--distance", "2.0",
            ]
        )
        assert code == 0
        assert "within_join" in capsys.readouterr().out

    def test_profile(self, generated, capsys):
        code = main(
            [
                "profile",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "intersection",
                "--sample", "5",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "chosen lod_list" in text

    def test_obs_exports_telemetry(self, generated, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        chrome = tmp_path / "chrome.json"
        prom = tmp_path / "metrics.prom"
        mjson = tmp_path / "metrics.json"
        code = main(
            [
                "obs",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "nn",
                "--trace-json", str(trace),
                "--chrome-trace", str(chrome),
                "--metrics-prom", str(prom),
                "--metrics-json", str(mjson),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "nn_join" in text
        assert "trace totals" in text
        spans = json.loads(trace.read_text())["spans"]
        assert spans and spans[0]["name"] == "query"
        events = json.loads(chrome.read_text())["traceEvents"]
        assert any(event["name"] == "query" for event in events)
        assert "repro_cache_hits_total" in prom.read_text()
        assert "repro_queries_total" in json.loads(mjson.read_text())

    def test_obs_funnel_and_top(self, generated, capsys):
        code = main(
            [
                "obs",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "nn",
                "--top", "3",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "funnel: candidates=" in text
        assert "top 3 spans by self time:" in text

    def test_obs_openmetrics_format(self, generated, tmp_path):
        prom = tmp_path / "metrics.om"
        code = main(
            [
                "obs",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "nn",
                "--format", "openmetrics",
                "--metrics-prom", str(prom),
            ]
        )
        assert code == 0
        text = prom.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_queries_total" in text

    def test_obs_profile_collapsed(self, generated, tmp_path, capsys):
        collapsed = tmp_path / "profile.collapsed"
        code = main(
            [
                "obs",
                str(generated / "nuclei_a"),
                str(generated / "nuclei_b"),
                "--query", "within",
                "--distance", "2.0",
                "--profile-collapsed", str(collapsed),  # implies --profile
                "--profile-interval-ms", "0.5",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "profile:" in text
        assert collapsed.exists()
        # every line is "phase;frame;... count"
        for line in collapsed.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack
            int(count)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
