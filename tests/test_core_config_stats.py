"""Tests for engine configuration and statistics accounting."""

import time

import pytest

from repro.core import Accel, EngineConfig, QueryStats
from repro.core.errors import EngineConfigError


class TestAccel:
    def test_labels(self):
        assert Accel().label == "B"
        assert Accel(aabbtree=True).label == "A"
        assert Accel(partition=True).label == "P"
        assert Accel(gpu=True).label == "G"
        assert Accel(partition=True, gpu=True).label == "P+G"

    def test_aabbtree_cannot_combine(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(accel=Accel(aabbtree=True, gpu=True))
        with pytest.raises(EngineConfigError):
            EngineConfig(accel=Accel(aabbtree=True, partition=True))


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.paradigm == "fpr"
        assert config.label == "FPR/B"

    def test_bad_paradigm(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(paradigm="progressive")

    def test_bad_lod_list(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(lod_list=())
        with pytest.raises(EngineConfigError):
            EngineConfig(lod_list=(2, 1))
        with pytest.raises(EngineConfigError):
            EngineConfig(lod_list=(1, 1, 2))
        with pytest.raises(EngineConfigError):
            EngineConfig(lod_list=(-1, 2))

    def test_with_paradigm(self):
        config = EngineConfig(paradigm="fpr", lod_list=(0, 3))
        flipped = config.with_paradigm("fr")
        assert flipped.paradigm == "fr"
        assert flipped.lod_list == (0, 3)

    def test_bad_partition_parts(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(partition_parts=0)


class TestQueryStats:
    def test_clock_accumulates(self):
        stats = QueryStats()
        with stats.clock("filter"):
            time.sleep(0.01)
        with stats.clock("filter"):
            time.sleep(0.01)
        assert stats.filter_seconds >= 0.02

    def test_clock_rejects_unknown_phase(self):
        with pytest.raises(AttributeError):
            with QueryStats().clock("nonsense"):
                pass

    def test_pruned_fraction(self):
        stats = QueryStats()
        stats.pairs_evaluated_by_lod[0] = 10
        stats.pairs_pruned_by_lod[0] = 4
        assert stats.pruned_fraction(0) == pytest.approx(0.4)
        assert stats.pruned_fraction(3) == 0.0

    def test_other_seconds_never_negative(self):
        stats = QueryStats(total_seconds=1.0, compute_seconds=2.0)
        assert stats.other_seconds == 0.0

    def test_merge(self):
        a = QueryStats(targets=2, results=1, total_seconds=1.0)
        a.pairs_evaluated_by_lod[0] = 5
        b = QueryStats(targets=3, results=4, total_seconds=0.5)
        b.pairs_evaluated_by_lod[0] = 7
        b.face_pairs_by_lod[2] = 100
        a.merge(b)
        assert a.targets == 5
        assert a.results == 5
        assert a.total_seconds == pytest.approx(1.5)
        assert a.pairs_evaluated_by_lod[0] == 12
        assert a.face_pairs_total == 100

    def test_merge_preserves_per_lod_dicts(self):
        a = QueryStats()
        a.pairs_evaluated_by_lod[0] = 3
        a.pairs_pruned_by_lod[0] = 1
        a.face_pairs_by_lod[0] = 10
        b = QueryStats()
        b.pairs_evaluated_by_lod[0] = 2
        b.pairs_evaluated_by_lod[2] = 4
        b.pairs_pruned_by_lod[2] = 4
        b.face_pairs_by_lod[2] = 50
        a.merge(b)
        assert dict(a.pairs_evaluated_by_lod) == {0: 5, 2: 4}
        assert dict(a.pairs_pruned_by_lod) == {0: 1, 2: 4}
        assert dict(a.face_pairs_by_lod) == {0: 10, 2: 50}
        # merging must not alias the source dicts
        a.face_pairs_by_lod[2] += 1
        assert b.face_pairs_by_lod[2] == 50

    def test_merge_accumulates_degraded_counters(self):
        a = QueryStats(degraded_objects=1, decode_failures=2)
        b = QueryStats(degraded_objects=3, decode_failures=5)
        a.merge(b)
        assert a.degraded_objects == 4
        assert a.decode_failures == 7

    def test_as_dict_and_summary(self):
        stats = QueryStats(query="nn_join", config_label="FPR/B", total_seconds=0.5)
        payload = stats.as_dict()
        assert payload["query"] == "nn_join"
        assert "nn_join" in stats.summary()
        assert "FPR/B" in stats.summary()

    def test_as_dict_includes_face_pairs_by_lod(self):
        stats = QueryStats()
        stats.face_pairs_by_lod[1] = 8
        stats.face_pairs_by_lod[3] = 24
        payload = stats.as_dict()
        assert payload["face_pairs_by_lod"] == {1: 8, 3: 24}
        assert payload["face_pairs_total"] == 32
        # a plain dict, safe to serialize and detached from the stats object
        assert type(payload["face_pairs_by_lod"]) is dict


class TestResolveSetting:
    """The one shared precedence chain: spec > override > config > env > default."""

    def test_default_when_nothing_set(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.delenv("REPRO_SERVE_PORT", raising=False)
        assert resolve_setting("serve_port") == 8030
        monkeypatch.delenv("REPRO_DEADLINE_MS", raising=False)
        assert resolve_setting("deadline_ms") is None

    def test_env_beats_default(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "9")
        assert resolve_setting("serve_max_inflight") == 9

    def test_config_beats_env(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.setenv("REPRO_DEADLINE_MS", "500")
        assert resolve_setting("deadline_ms", config=EngineConfig(deadline_ms=50)) == 50

    def test_override_beats_config(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.setenv("REPRO_QUERY_WORKERS", "8")
        config = EngineConfig(query_workers=4)
        assert resolve_setting("query_workers", override=2, config=config) == 2

    def test_spec_beats_everything(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.setenv("REPRO_DEADLINE_MS", "500")
        config = EngineConfig(deadline_ms=50)
        assert resolve_setting("deadline_ms", spec=5, override=25, config=config) == 5

    def test_plain_value_config_layer(self):
        from repro.core.config import resolve_setting

        # Settings with no EngineConfig field accept a plain value.
        assert resolve_setting("serve_max_queue", config=3) == 3

    def test_malformed_env_raises_loudly(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.setenv("REPRO_SERVE_PORT", "not-a-port")
        with pytest.raises(EngineConfigError, match="REPRO_SERVE_PORT"):
            resolve_setting("serve_port")

    def test_out_of_range_rejected_whatever_the_layer(self, monkeypatch):
        from repro.core.config import resolve_setting

        with pytest.raises(EngineConfigError, match="query_workers"):
            resolve_setting("query_workers", override=0)
        monkeypatch.setenv("REPRO_QUERY_WORKERS", "-1")
        with pytest.raises(EngineConfigError, match="query_workers"):
            resolve_setting("query_workers")

    def test_invalid_backend_env_rejected(self, monkeypatch):
        from repro.core.config import resolve_setting

        monkeypatch.setenv("REPRO_QUERY_BACKEND", "fork")
        with pytest.raises(EngineConfigError, match="REPRO_QUERY_BACKEND"):
            resolve_setting("query_backend")

    def test_engine_config_wrappers_route_through_resolver(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERY_WORKERS", "3")
        monkeypatch.setenv("REPRO_QUERY_BACKEND", "process")
        config = EngineConfig()
        assert config.resolve_query_workers() == 3
        assert config.resolve_query_backend() == "process"
        assert EngineConfig(query_workers=2).resolve_query_workers() == 2
