"""Tests for EditableMesh: face surgery, vertex removal, reinsertion."""

import numpy as np
import pytest

from repro.mesh import (
    EditableMesh,
    box_mesh,
    icosphere,
    mesh_volume,
    tetrahedron,
    validate_polyhedron,
)
from repro.mesh.adjacency import MeshAdjacency, ordered_ring


class TestAdjacency:
    def test_degree_matches_star_size(self):
        mesh = icosphere(1)
        adj = MeshAdjacency(mesh.faces)
        # On an icosphere every vertex has degree 5 or 6.
        for v in range(mesh.num_vertices):
            assert adj.degree(v) in (5, 6)

    def test_neighbors_of_tetra_vertex(self):
        adj = MeshAdjacency(tetrahedron().faces)
        assert adj.neighbors(0) == {1, 2, 3}

    def test_ring_is_cycle_of_neighbors(self):
        mesh = icosphere(1)
        adj = MeshAdjacency(mesh.faces)
        ring = adj.ring(7)
        assert ring is not None
        assert set(ring) == adj.neighbors(7)

    def test_ring_orientation_matches_faces(self):
        # For each consecutive ring pair (a, b) there must be a face (v, a, b).
        mesh = icosphere(1)
        adj = MeshAdjacency(mesh.faces)
        v = 3
        ring = adj.ring(v)
        face_set = {tuple(f) for f in mesh.faces.tolist()}

        def has_oriented(a, b, c):
            return (a, b, c) in face_set or (b, c, a) in face_set or (c, a, b) in face_set

        for i, a in enumerate(ring):
            b = ring[(i + 1) % len(ring)]
            assert has_oriented(v, a, b)

    def test_ordered_ring_rejects_open_fan(self):
        # Remove one star face: the fan is open, no ring exists.
        mesh = icosphere(0)
        adj = MeshAdjacency(mesh.faces)
        star = [tuple(mesh.faces[f]) for f in adj.vertex_faces[0]]
        assert ordered_ring(0, star[:-1]) is None


class TestFaceSurgery:
    def test_add_remove_roundtrip(self):
        mesh = EditableMesh.from_polyhedron(box_mesh())
        before = mesh.face_array().shape
        mesh.remove_face(0, 2, 1)
        assert mesh.num_faces == 11
        mesh.add_face(0, 2, 1)
        assert mesh.face_array().shape == before

    def test_add_duplicate_raises(self):
        mesh = EditableMesh.from_polyhedron(tetrahedron())
        with pytest.raises(ValueError):
            mesh.add_face(0, 1, 2)

    def test_remove_missing_raises(self):
        mesh = EditableMesh.from_polyhedron(tetrahedron())
        with pytest.raises(KeyError):
            mesh.remove_face(0, 1, 99)

    def test_edge_bookkeeping(self):
        mesh = EditableMesh.from_polyhedron(tetrahedron())
        assert mesh.has_edge(0, 1)
        mesh.remove_face(0, 1, 2)
        assert mesh.has_edge(0, 1)  # still used by the other face
        mesh.remove_face(0, 3, 1)
        assert not mesh.has_edge(0, 1)


class TestVertexRemoval:
    def test_tetrahedron_vertex_not_removable(self):
        # Removing any tetra vertex would duplicate the opposite face.
        mesh = EditableMesh.from_polyhedron(tetrahedron())
        assert mesh.try_remove_vertex(0) is None

    def test_icosphere_vertex_removal_keeps_mesh_valid(self):
        mesh = EditableMesh.from_polyhedron(icosphere(1))
        patch = mesh.try_remove_vertex(5)
        assert patch is not None
        assert patch.vertex == 5
        assert len(patch.patch_faces) == len(patch.star_faces) - 2
        validate_polyhedron(mesh.to_polyhedron(compact=True))

    def test_removal_reduces_face_count_by_two(self):
        mesh = EditableMesh.from_polyhedron(icosphere(1))
        before = mesh.num_faces
        assert mesh.try_remove_vertex(0) is not None
        assert mesh.num_faces == before - 2

    def test_removed_vertex_no_longer_live(self):
        mesh = EditableMesh.from_polyhedron(icosphere(1))
        assert 0 in mesh.live_vertices
        mesh.try_remove_vertex(0)
        assert 0 not in mesh.live_vertices

    def test_accept_predicate_can_veto(self):
        mesh = EditableMesh.from_polyhedron(icosphere(1))
        assert mesh.try_remove_vertex(0, accept=lambda v, patch: False) is None
        assert mesh.num_faces == icosphere(1).num_faces  # untouched

    def test_reinsert_restores_surface_exactly(self):
        original = icosphere(2)
        mesh = EditableMesh.from_polyhedron(original)
        patches = []
        for v in (0, 17, 30):
            patch = mesh.try_remove_vertex(v)
            if patch is not None:
                patches.append(patch)
        assert patches
        for patch in reversed(patches):
            mesh.reinsert(patch)
        assert (
            mesh.to_polyhedron().canonical_face_set()
            == original.canonical_face_set()
        )

    def test_removal_shrinks_volume_of_convex_mesh(self):
        # Every vertex of a convex mesh is protruding: removal cuts solid.
        original = icosphere(2)
        mesh = EditableMesh.from_polyhedron(original)
        assert mesh.try_remove_vertex(3) is not None
        assert mesh_volume(mesh.to_polyhedron()) < mesh_volume(original)

    def test_remove_recorded_replays_removal(self):
        original = icosphere(1)
        mesh = EditableMesh.from_polyhedron(original)
        patch = mesh.try_remove_vertex(4)
        mesh.reinsert(patch)
        mesh.remove_recorded(patch)
        other = EditableMesh.from_polyhedron(original)
        other.try_remove_vertex(4)
        assert (
            mesh.to_polyhedron().canonical_face_set()
            == other.to_polyhedron().canonical_face_set()
        )
