"""Tests for the PPVP codec: invertibility and the progressive property.

These are the paper's load-bearing guarantees (Section 3.2):

1. lower-LOD meshes are spatial subsets of higher-LOD meshes, hence
2. intersection at a lower LOD implies intersection at higher LODs, and
3. inter-object distance is non-increasing as LOD increases.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    PPVPEncoder,
    ReplayDecoder,
    deserialize_object,
    serialize_object,
)
from repro.geometry import point_in_polyhedron, tri_tri_distance_batch
from repro.mesh import icosphere, mesh_volume, validate_polyhedron
from tests.test_compression_classify import dented_icosphere


@pytest.fixture(scope="module")
def sphere_codec():
    mesh = icosphere(2)
    return mesh, PPVPEncoder(max_lods=4, rounds_per_lod=2).encode(mesh)


class TestEncoding:
    def test_round_structure(self, sphere_codec):
        _mesh, obj = sphere_codec
        assert 1 <= obj.num_rounds <= 6
        assert all(len(r) > 0 for r in obj.rounds)
        assert obj.max_lod >= 1

    def test_base_is_smaller(self, sphere_codec):
        mesh, obj = sphere_codec
        assert len(obj.base_faces) < mesh.num_faces

    def test_each_round_removes_independent_set(self, sphere_codec):
        _mesh, obj = sphere_codec
        for round_records in obj.rounds:
            removed = {r.vertex for r in round_records}
            for record in round_records:
                # No removed vertex may appear in another's ring.
                assert not (set(record.ring) & removed)

    def test_aabb_preserved(self, sphere_codec):
        mesh, obj = sphere_codec
        assert obj.aabb == mesh.aabb

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PPVPEncoder(max_lods=0)
        with pytest.raises(ValueError):
            PPVPEncoder(rounds_per_lod=0)
        with pytest.raises(ValueError):
            PPVPEncoder(min_faces=3)


class TestDecoding:
    def test_full_decode_restores_original_exactly(self, sphere_codec):
        mesh, obj = sphere_codec
        restored = obj.decode(obj.max_lod)
        assert restored.canonical_face_set() == mesh.canonical_face_set()
        assert np.array_equal(restored.vertices, mesh.vertices)

    def test_every_lod_is_structurally_valid(self, sphere_codec):
        _mesh, obj = sphere_codec
        for lod in obj.lods:
            validate_polyhedron(obj.decode(lod).compacted())

    def test_face_count_at_lod_matches_decode(self, sphere_codec):
        _mesh, obj = sphere_codec
        for lod in obj.lods:
            assert obj.face_count_at_lod(lod) == obj.decode(lod).num_faces

    def test_face_counts_strictly_increase(self, sphere_codec):
        _mesh, obj = sphere_codec
        counts = [obj.face_count_at_lod(lod) for lod in obj.lods]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_decoder_is_monotone(self, sphere_codec):
        _mesh, obj = sphere_codec
        decoder = obj.decoder()
        decoder.advance_to(obj.max_lod)
        with pytest.raises(ValueError):
            decoder.advance_to(0)

    def test_decoder_counts_reinserted_vertices(self, sphere_codec):
        _mesh, obj = sphere_codec
        decoder = obj.decoder()
        decoder.advance_to(obj.max_lod)
        assert decoder.vertices_reinserted == sum(len(r) for r in obj.rounds)

    def test_decode_out_of_range_lod(self, sphere_codec):
        _mesh, obj = sphere_codec
        with pytest.raises(ValueError):
            obj.decode(obj.max_lod + 1)
        with pytest.raises(ValueError):
            obj.decode(-1)

    def test_progressive_equals_one_shot(self, sphere_codec):
        _mesh, obj = sphere_codec
        decoder = obj.decoder()
        for lod in obj.lods:
            decoder.advance_to(lod)
            assert (
                decoder.polyhedron().canonical_face_set()
                == obj.decode(lod).canonical_face_set()
            )


class TestSliceDecoderEquivalence:
    """The columnar decoder is the replay decoder, byte for byte.

    ``ProgressiveDecoder`` materializes LODs by slicing the compiled
    :class:`LODTable`; ``ReplayDecoder`` replays removal records through
    an ``EditableMesh``. They must agree on the exact face array — rows,
    orientation, and order — at every LOD, or query results would shift
    (refinement probes ``triangles[0, 0]`` and kernels early-exit in
    array order).
    """

    @staticmethod
    def _assert_equivalent(obj):
        ref, cur = ReplayDecoder(obj), obj.decoder()
        for lod in obj.lods:
            ref.advance_to(lod)
            cur.advance_to(lod)
            assert np.array_equal(ref.face_array(), cur.face_array()), f"LOD {lod}"
            assert ref.vertices_reinserted == cur.vertices_reinserted

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_quantized_round_trip_blobs(self, seed):
        # Quantization perturbs positions but not connectivity; the two
        # decoders must stay identical on deserialized objects.
        mesh, _ = dented_icosphere(subdivisions=1, seed=seed % 11)
        obj = PPVPEncoder(max_lods=4).encode(mesh)
        restored = deserialize_object(serialize_object(obj, quant_bits=12))
        self._assert_equivalent(restored)

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_salvaged_round_prefixes(self, data):
        # Salvage keeps a checksum-valid round suffix — a prefix of the
        # decode timeline. Any such truncation must decode identically.
        seed = data.draw(st.integers(0, 10))
        mesh, _ = dented_icosphere(subdivisions=1, seed=seed)
        obj = PPVPEncoder(max_lods=4).encode(mesh)
        dropped = data.draw(st.integers(0, obj.num_rounds))
        truncated = dataclasses.replace(obj, rounds=obj.rounds[dropped:])
        self._assert_equivalent(truncated)

    def test_fixture_object(self, sphere_codec):
        _mesh, obj = sphere_codec
        self._assert_equivalent(obj)


class TestProgressiveProperty:
    """The subset guarantee, on convex and non-convex inputs."""

    def test_volume_non_decreasing_with_lod_convex(self, sphere_codec):
        _mesh, obj = sphere_codec
        volumes = [mesh_volume(obj.decode(lod)) for lod in obj.lods]
        for low, high in zip(volumes, volumes[1:]):
            assert low <= high + 1e-12

    def test_volume_non_decreasing_with_lod_nonconvex(self):
        mesh, _ = dented_icosphere(subdivisions=2)
        obj = PPVPEncoder(max_lods=4).encode(mesh)
        volumes = [mesh_volume(obj.decode(lod)) for lod in obj.lods]
        for low, high in zip(volumes, volumes[1:]):
            assert low <= high + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_low_lod_interior_points_stay_inside_original(self, seed):
        rng = np.random.default_rng(seed)
        mesh, _ = dented_icosphere(subdivisions=2, seed=seed % 7)
        obj = PPVPEncoder(max_lods=4).encode(mesh)
        base = obj.decode(0)
        original_tris = mesh.triangles
        base_tris = base.triangles
        # Sample random points; any point inside the base (lowest LOD)
        # must be inside the original: the base is a subset.
        points = rng.uniform(-1.1, 1.1, size=(40, 3))
        for point in points:
            if point_in_polyhedron(point, base_tris):
                assert point_in_polyhedron(point, original_tris)

    def test_distance_non_increasing_with_lod(self):
        # Two objects; the distance measured at increasing LODs must not grow.
        a = icosphere(2, radius=1.0, center=(0, 0, 0))
        b = icosphere(2, radius=1.0, center=(3.0, 0.4, -0.2))
        enc = PPVPEncoder(max_lods=4)
        ca, cb = enc.encode(a), enc.encode(b)
        lods = range(min(ca.max_lod, cb.max_lod) + 1)
        dists = []
        for lod in lods:
            ta = ca.decode(lod).triangles
            tb = cb.decode(lod).triangles
            ii, jj = np.meshgrid(np.arange(len(ta)), np.arange(len(tb)), indexing="ij")
            d = tri_tri_distance_batch(
                ta[ii.ravel()], tb[jj.ravel()], check_intersection=False
            ).min()
            dists.append(d)
        for low, high in zip(dists, dists[1:]):
            assert low >= high - 1e-9

    def test_intersection_at_low_lod_implies_at_high_lod(self):
        # Overlapping spheres: every LOD pair that reports intersection
        # must keep reporting it at all higher LODs.
        from repro.geometry import tri_tri_intersect_batch

        a = icosphere(2, radius=1.0, center=(0, 0, 0))
        b = icosphere(2, radius=1.0, center=(1.2, 0, 0))
        enc = PPVPEncoder(max_lods=4)
        ca, cb = enc.encode(a), enc.encode(b)
        lods = range(min(ca.max_lod, cb.max_lod) + 1)
        flags = []
        for lod in lods:
            ta = ca.decode(lod).triangles
            tb = cb.decode(lod).triangles
            ii, jj = np.meshgrid(np.arange(len(ta)), np.arange(len(tb)), indexing="ij")
            flags.append(
                bool(tri_tri_intersect_batch(ta[ii.ravel()], tb[jj.ravel()]).any())
            )
        for low, high in zip(flags, flags[1:]):
            assert (not low) or high  # low => high
