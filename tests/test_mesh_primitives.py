"""Tests for procedural mesh primitives."""

import math

import numpy as np
import pytest

from repro.mesh import (
    box_mesh,
    icosphere,
    mesh_volume,
    tetrahedron,
    tube_along_path,
    validate_polyhedron,
)
from repro.mesh.primitives import icosahedron


class TestIcosphere:
    def test_face_count_formula(self):
        for k in range(4):
            assert icosphere(k).num_faces == 20 * 4**k

    def test_all_vertices_on_sphere(self):
        mesh = icosphere(2, radius=3.0, center=(1, 2, 3))
        radius = np.linalg.norm(mesh.vertices - np.array([1.0, 2.0, 3.0]), axis=1)
        assert np.allclose(radius, 3.0)

    def test_structurally_valid(self):
        for k in range(4):
            validate_polyhedron(icosphere(k))

    def test_negative_subdivision_rejected(self):
        with pytest.raises(ValueError):
            icosphere(-1)

    def test_icosahedron_valid(self):
        validate_polyhedron(icosahedron())


class TestBoxAndTetra:
    def test_box_valid_and_positive_volume(self):
        mesh = box_mesh((-1, -2, -3), (1, 2, 3))
        validate_polyhedron(mesh)
        assert mesh_volume(mesh) == pytest.approx(48.0)

    def test_box_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            box_mesh((0, 0, 0), (1, -1, 1))

    def test_tetrahedron_valid(self):
        validate_polyhedron(tetrahedron(scale=2.5, center=(4, 5, 6)))


class TestTube:
    def test_straight_tube_is_valid_cylinder(self):
        path = [(0, 0, 0), (0, 0, 1), (0, 0, 2)]
        mesh = tube_along_path(path, radii=0.5, segments=16)
        validate_polyhedron(mesh)
        # Volume approaches pi * r^2 * length for many segments.
        expected = math.pi * 0.25 * 2.0
        assert mesh_volume(mesh) == pytest.approx(expected, rel=0.05)

    def test_bent_tube_valid(self):
        path = [(0, 0, 0), (1, 0, 0), (2, 1, 0), (2, 2, 1)]
        mesh = tube_along_path(path, radii=[0.3, 0.3, 0.2, 0.1], segments=10)
        validate_polyhedron(mesh)
        assert mesh_volume(mesh) > 0

    def test_face_count(self):
        mesh = tube_along_path([(0, 0, 0), (0, 0, 1)], radii=1.0, segments=8)
        # 1 span * 8 segments * 2 triangles + 2 caps * 8 fans
        assert mesh.num_faces == 16 + 16

    def test_rejects_short_path(self):
        with pytest.raises(ValueError):
            tube_along_path([(0, 0, 0)], radii=1.0)

    def test_rejects_bad_segments(self):
        with pytest.raises(ValueError):
            tube_along_path([(0, 0, 0), (1, 0, 0)], radii=1.0, segments=2)

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            tube_along_path([(0, 0, 0), (1, 0, 0)], radii=0.0)

    def test_rejects_coincident_points(self):
        with pytest.raises(ValueError):
            tube_along_path([(0, 0, 0), (0, 0, 0), (1, 0, 0)], radii=0.5)
