"""Integration tests: every engine configuration against ground truth.

The naive engine (exhaustive full-resolution evaluation, with provably
safe MBB skipping) defines correct answers; every paradigm/acceleration
cell of the paper's Table 1 must return exactly the same joins.
"""

import pytest

from repro.baselines import NaiveEngine
from repro.core import Accel, EngineConfig, QuerySpec, ThreeDPro
from repro.core.errors import DatasetNotLoadedError, EngineConfigError
from repro.mesh import icosphere
from repro.storage import Dataset

WITHIN_DISTANCE = 1.0

CONFIGS = [
    EngineConfig(paradigm="fr"),
    EngineConfig(paradigm="fpr"),
    EngineConfig(paradigm="fr", accel=Accel(aabbtree=True)),
    EngineConfig(paradigm="fpr", accel=Accel(aabbtree=True)),
    EngineConfig(paradigm="fr", accel=Accel(gpu=True)),
    EngineConfig(paradigm="fpr", accel=Accel(gpu=True)),
    EngineConfig(paradigm="fpr", accel=Accel(partition=True), partition_min_faces=200),
    EngineConfig(
        paradigm="fpr", accel=Accel(partition=True, gpu=True), partition_min_faces=200
    ),
]

CONFIG_IDS = [c.label for c in CONFIGS]


@pytest.fixture(scope="module")
def truth_int(small_scene):
    return NaiveEngine(small_scene.nuclei_a, small_scene.nuclei_b, prefilter=True).intersection_join().pairs


@pytest.fixture(scope="module")
def truth_wn(small_scene):
    return NaiveEngine(small_scene.nuclei_a, small_scene.nuclei_b, prefilter=True).within_join(WITHIN_DISTANCE).pairs


@pytest.fixture(scope="module")
def truth_nn(small_scene):
    return NaiveEngine(small_scene.nuclei_a, small_scene.vessels, prefilter=True).nn_join().pairs


def build_engine(config, datasets):
    engine = ThreeDPro(config)
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


class TestJoinCorrectness:
    @pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
    def test_intersection_join_matches_truth(self, config, datasets, truth_int):
        engine = build_engine(config, datasets)
        result = engine.intersection_join("nuclei_a", "nuclei_b")
        assert result.pairs == truth_int

    @pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
    def test_within_join_matches_truth(self, config, datasets, truth_wn):
        engine = build_engine(config, datasets)
        result = engine.within_join("nuclei_a", "nuclei_b", WITHIN_DISTANCE)
        assert result.pairs == truth_wn

    @pytest.mark.parametrize("config", CONFIGS, ids=CONFIG_IDS)
    def test_nn_join_matches_truth(self, config, datasets, truth_nn):
        engine = build_engine(config, datasets)
        result = engine.nn_join("nuclei_a", "vessels")
        assert set(result.pairs) == set(truth_nn)
        for tid, (true_sid, true_dist) in truth_nn.items():
            matches = result.pairs[tid]
            assert len(matches) == 1
            sid, dist, exact = matches[0]
            assert sid == true_sid
            if exact:
                assert dist == pytest.approx(true_dist, abs=1e-9)
            else:
                # Early-returned NN: the reported bound upper-bounds truth.
                assert dist >= true_dist - 1e-9

    def test_knn_matches_truth(self, datasets, small_scene):
        truth = NaiveEngine(
            small_scene.nuclei_a, small_scene.vessels, prefilter=True
        ).knn_join(2).pairs
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        result = engine.knn_join("nuclei_a", "vessels", k=2)
        for tid, expected in truth.items():
            got = result.pairs[tid]
            # The k-nearest *set* is always correct; the order is only
            # guaranteed when refinement ran to exact distances (an early
            # FPR return leaves it sorted by upper bound).
            assert {sid for sid, _d, _e in got} == {sid for sid, _d in expected}
            if all(exact for _sid, _d, exact in got):
                assert [sid for sid, _d, _e in got] == [sid for sid, _d in expected]

    def test_knn_exact_under_fr_matches_truth_order(self, datasets, small_scene):
        truth = NaiveEngine(
            small_scene.nuclei_a, small_scene.vessels, prefilter=True
        ).knn_join(2).pairs
        engine = build_engine(EngineConfig(paradigm="fr"), datasets)
        result = engine.knn_join("nuclei_a", "vessels", k=2)
        for tid, expected in truth.items():
            got = result.pairs[tid]
            assert [sid for sid, _d, _e in got] == [sid for sid, _d in expected]
            for (_sid, dist, exact), (_tsid, tdist) in zip(got, expected):
                assert exact
                assert dist == pytest.approx(tdist, abs=1e-9)


class TestParadigmBehaviour:
    def test_fpr_evaluates_fewer_face_pairs_than_fr(self, datasets):
        fr = build_engine(EngineConfig(paradigm="fr"), datasets)
        fpr = build_engine(EngineConfig(paradigm="fpr"), datasets)
        fr_stats = fr.intersection_join("nuclei_a", "nuclei_b").stats
        fpr_stats = fpr.intersection_join("nuclei_a", "nuclei_b").stats
        assert fpr_stats.face_pairs_total < fr_stats.face_pairs_total

    def test_fr_uses_single_lod(self, datasets):
        engine = build_engine(EngineConfig(paradigm="fr"), datasets)
        stats = engine.intersection_join("nuclei_a", "nuclei_b").stats
        assert len(stats.pairs_evaluated_by_lod) == 1

    def test_fpr_touches_low_lods(self, datasets):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        stats = engine.intersection_join("nuclei_a", "nuclei_b").stats
        assert 0 in stats.pairs_evaluated_by_lod

    def test_custom_lod_list_respected(self, datasets):
        engine = build_engine(
            EngineConfig(paradigm="fpr", lod_list=(0, 2)), datasets
        )
        stats = engine.within_join("nuclei_a", "nuclei_b", WITHIN_DISTANCE).stats
        lods = set(stats.pairs_evaluated_by_lod)
        top = max(lods)
        assert lods <= {0, 2, top}

    def test_time_accounting_sums_to_total(self, datasets):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        stats = engine.within_join("nuclei_a", "nuclei_b", WITHIN_DISTANCE).stats
        accounted = (
            stats.filter_seconds + stats.decode_seconds + stats.compute_seconds
        )
        # Phase seconds are summed *busy* time across query workers, so
        # under parallel execution (e.g. REPRO_QUERY_WORKERS in CI) the
        # sum may exceed wall time by up to the worker count.
        assert accounted <= stats.total_seconds * engine.query_workers + 1e-6

    def test_cache_hits_accumulate_across_queries(self, datasets):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        first = engine.within_join("nuclei_a", "nuclei_b", WITHIN_DISTANCE).stats
        second = engine.within_join("nuclei_a", "nuclei_b", WITHIN_DISTANCE).stats
        assert second.cache_hits > first.cache_hits or second.cache_misses == 0


class TestContainment:
    def test_nested_spheres_intersect(self):
        # Surfaces disjoint, small sphere strictly inside the big one:
        # Algorithm 1's containment stage must still report intersection.
        big = icosphere(2, radius=3.0)
        small = icosphere(2, radius=0.5)
        engine = ThreeDPro(EngineConfig(paradigm="fpr"))
        engine.load_dataset(Dataset("big", [__import__("repro.compression", fromlist=["PPVPEncoder"]).PPVPEncoder().encode(big)]))
        engine.load_dataset(Dataset("small", [__import__("repro.compression", fromlist=["PPVPEncoder"]).PPVPEncoder().encode(small)]))
        assert engine.intersection_join("big", "small").pairs == {0: [0]}
        assert engine.intersection_join("small", "big").pairs == {0: [0]}

    def test_disjoint_spheres_do_not_intersect(self):
        from repro.compression import PPVPEncoder

        a = icosphere(1, center=(0, 0, 0))
        b = icosphere(1, center=(5, 0, 0))
        engine = ThreeDPro(EngineConfig(paradigm="fpr"))
        engine.load_dataset(Dataset("a", [PPVPEncoder().encode(a)]))
        engine.load_dataset(Dataset("b", [PPVPEncoder().encode(b)]))
        assert engine.intersection_join("a", "b").pairs == {}


class TestProbeQueries:
    # Probe queries go through execute(QuerySpec(probe=...)); the
    # deprecated bare ``*_query`` wrappers are only exercised by the
    # dedicated deprecation tests in test_query_api.py.

    @staticmethod
    def _probe_matches(engine, kind, source, probe, **kwargs):
        return engine.execute(
            QuerySpec(kind=kind, source=source, probe=probe, **kwargs)
        ).matches

    def test_intersection_query(self, datasets, small_scene):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        probe = small_scene.nuclei_a[0]
        hits = self._probe_matches(engine, "intersection", "nuclei_b", probe)
        truth = NaiveEngine([probe], small_scene.nuclei_b, prefilter=True).intersection_join()
        assert sorted(hits) == truth.pairs.get(0, [])

    def test_within_query(self, datasets, small_scene):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        probe = small_scene.nuclei_a[3]
        hits = self._probe_matches(
            engine, "within", "nuclei_b", probe, distance=WITHIN_DISTANCE
        )
        truth = NaiveEngine([probe], small_scene.nuclei_b, prefilter=True).within_join(WITHIN_DISTANCE)
        assert sorted(hits) == truth.pairs.get(0, [])

    def test_nn_query(self, datasets, small_scene):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        probe = small_scene.nuclei_a[5]
        matches = self._probe_matches(engine, "nn", "vessels", probe)
        truth = NaiveEngine([probe], small_scene.vessels, prefilter=True).nn_join()
        assert matches
        assert matches[0][0] == truth.pairs[0][0]

    def test_probe_dataset_cleaned_up(self, datasets, small_scene):
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        self._probe_matches(engine, "nn", "vessels", small_scene.nuclei_a[0])
        assert all("__probe__" not in name for name in engine.dataset_names)

    def test_back_to_back_probes_do_not_share_state(self, datasets, small_scene):
        """Regression: probe datasets used one fixed name, so a second
        probe query could reuse the first probe's cached decodes."""
        engine = build_engine(EngineConfig(paradigm="fpr"), datasets)
        probe_a, probe_b = small_scene.nuclei_a[0], small_scene.nuclei_a[7]
        first = self._probe_matches(engine, "intersection", "nuclei_b", probe_a)
        second = self._probe_matches(engine, "intersection", "nuclei_b", probe_b)

        fresh = build_engine(EngineConfig(paradigm="fpr"), datasets)
        assert sorted(second) == sorted(
            self._probe_matches(fresh, "intersection", "nuclei_b", probe_b)
        )
        # the first probe repeated on the warm engine still answers the same
        assert sorted(
            self._probe_matches(engine, "intersection", "nuclei_b", probe_a)
        ) == sorted(first)
        # and no probe decodes linger in the shared cache
        assert not any(
            str(key[0]).startswith("__probe__") for key in engine.cache._entries
        )


class TestErrors:
    def test_unknown_dataset(self, datasets):
        engine = build_engine(EngineConfig(), datasets)
        with pytest.raises(DatasetNotLoadedError):
            engine.intersection_join("nuclei_a", "nope")

    def test_negative_distance(self, datasets):
        engine = build_engine(EngineConfig(), datasets)
        with pytest.raises(EngineConfigError):
            engine.within_join("nuclei_a", "nuclei_b", -1.0)

    def test_bad_k(self, datasets):
        engine = build_engine(EngineConfig(), datasets)
        with pytest.raises(EngineConfigError):
            engine.knn_join("nuclei_a", "nuclei_b", k=0)
