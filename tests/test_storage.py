"""Tests for the decode cache, cuboid grid, file format, and dataset store."""

import numpy as np
import pytest

from repro.compression import PPVPEncoder
from repro.geometry import AABB
from repro.mesh import icosphere
from repro.storage import (
    CuboidGrid,
    Dataset,
    DecodeCache,
    DecodedLOD,
    DecodedObjectProvider,
    load_dataset,
    read_cuboid_file,
    save_dataset,
    write_cuboid_file,
)
from repro.storage.fileformat import CuboidFormatError


def make_decoded(seed=0, faces=20):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(size=(faces * 3, 3))
    face_idx = np.arange(faces * 3, dtype=np.int64).reshape(faces, 3)
    return DecodedLOD(positions, face_idx)


class TestDecodedLOD:
    def test_lazy_triangles(self):
        dec = make_decoded()
        assert dec._triangles is None
        assert dec.triangles.shape == (20, 3, 3)

    def test_lazy_tree(self):
        dec = make_decoded()
        assert dec._tree is None
        assert dec.tree.num_nodes >= 1

    def test_nbytes_grows_with_materialization(self):
        dec = make_decoded()
        before = dec.nbytes
        _ = dec.triangles
        assert dec.nbytes > before


class TestDecodeCache:
    def test_hit_after_put(self):
        cache = DecodeCache()
        dec = make_decoded()
        cache.put(("d", 1, 0), dec)
        assert cache.get(("d", 1, 0)) is dec
        assert cache.hits == 1

    def test_miss_counts(self):
        cache = DecodeCache()
        assert cache.get(("d", 1, 0)) is None
        assert cache.misses == 1

    def test_disabled_cache_never_hits(self):
        cache = DecodeCache(enabled=False)
        dec = make_decoded()
        cache.put(("d", 1, 0), dec)
        assert cache.get(("d", 1, 0)) is None
        assert cache.hit_rate == 0.0

    def test_lru_eviction_by_bytes(self):
        entries = [make_decoded(seed=i) for i in range(5)]
        budget = sum(e.nbytes for e in entries[:3])
        cache = DecodeCache(capacity_bytes=budget)
        for i, entry in enumerate(entries):
            cache.put(("d", i, 0), entry)
        assert cache.get(("d", 0, 0)) is None  # oldest evicted
        assert cache.get(("d", 4, 0)) is entries[4]
        assert cache.evictions >= 1
        assert cache.bytes_used <= budget

    def test_touch_refreshes_recency(self):
        entries = [make_decoded(seed=i) for i in range(3)]
        budget = sum(e.nbytes for e in entries[:2])
        cache = DecodeCache(capacity_bytes=budget)
        cache.put(("d", 0, 0), entries[0])
        cache.put(("d", 1, 0), entries[1])
        cache.get(("d", 0, 0))  # refresh 0
        cache.put(("d", 2, 0), entries[2])  # evicts 1, not 0
        assert cache.get(("d", 0, 0)) is entries[0]
        assert cache.get(("d", 1, 0)) is None


class TestProvider:
    @pytest.fixture()
    def provider(self):
        objects = [PPVPEncoder(max_lods=4).encode(icosphere(2, center=(i * 3.0, 0, 0))) for i in range(3)]
        return DecodedObjectProvider("test", objects, DecodeCache())

    def test_decode_and_cache(self, provider):
        first = provider.get(0, 1)
        again = provider.get(0, 1)
        assert first is again  # cache hit returns the same entry
        assert provider.cache.hits == 1

    def test_forward_decoding_reuses_decoder(self, provider):
        provider.get(1, 0)
        before = provider.decoded_vertices
        provider.get(1, provider.max_lod(1))
        assert provider.decoded_vertices > before

    def test_backward_request_restarts_decoder(self, provider):
        top = provider.max_lod(2)
        provider.get(2, top)
        provider.cache.clear()  # evict snapshots
        low = provider.get(2, 0)  # must restart, not fail
        assert low.num_faces < provider.get(2, top).num_faces

    def test_faces_match_direct_decode(self, provider):
        top = provider.max_lod(0)
        via_provider = provider.get(0, top)
        direct = provider.objects[0].decode(top)
        assert sorted(map(tuple, via_provider.faces.tolist())) == sorted(
            map(tuple, direct.faces.tolist())
        )


class TestCuboidGrid:
    GRID = CuboidGrid(AABB((0, 0, 0), (10, 10, 10)), (2, 2, 2))

    def test_cell_of_point(self):
        assert self.GRID.cell_of_point((1, 1, 1)) == (0, 0, 0)
        assert self.GRID.cell_of_point((9, 9, 9)) == (1, 1, 1)

    def test_clamping(self):
        assert self.GRID.cell_of_point((-5, 50, 5)) == (0, 1, 1)

    def test_ids_are_unique(self):
        ids = {
            self.GRID.cuboid_id((i, j, k))
            for i in range(2)
            for j in range(2)
            for k in range(2)
        }
        assert len(ids) == 8

    def test_cuboid_bounds_roundtrip(self):
        for cid in range(8):
            bounds = self.GRID.cuboid_bounds(cid)
            assert self.GRID.cuboid_of_box(bounds) == cid

    def test_assign_groups_by_center(self):
        boxes = [AABB((1, 1, 1), (2, 2, 2)), AABB((8, 8, 8), (9, 9, 9))]
        groups = self.GRID.assign(boxes)
        assert sorted(len(v) for v in groups.values()) == [1, 1]

    def test_ordered_assignment_sorted(self):
        boxes = [AABB((8, 8, 8), (9, 9, 9)), AABB((1, 1, 1), (2, 2, 2))]
        batches = self.GRID.ordered_assignment(boxes)
        assert batches == [[1], [0]]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            CuboidGrid(AABB((0, 0, 0), (1, 1, 1)), (0, 1, 1))


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "c.3dpc"
        blobs = [b"hello", b"", b"world" * 100]
        write_cuboid_file(path, blobs, [5, 9, 2])
        assert read_cuboid_file(path) == [(5, b"hello"), (9, b""), (2, b"world" * 100)]

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c.3dpc"
        path.write_bytes(b"XXXX\x01\x00")
        with pytest.raises(CuboidFormatError):
            read_cuboid_file(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "c.3dpc"
        write_cuboid_file(path, [b"abcdef"], [0])
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(CuboidFormatError):
            read_cuboid_file(path)

    def test_mismatched_args(self, tmp_path):
        with pytest.raises(ValueError):
            write_cuboid_file(tmp_path / "x", [b"a"], [1, 2])


class TestDatasetStore:
    @pytest.fixture(scope="class")
    def dataset(self):
        meshes = [icosphere(1, center=(i * 4.0, 0, 0)) for i in range(6)]
        return Dataset.from_polyhedra("spheres", meshes, PPVPEncoder(max_lods=4))

    def test_len_and_boxes(self, dataset):
        assert len(dataset) == 6
        assert len(dataset.boxes) == 6

    def test_cuboid_batches_cover_all(self, dataset):
        batches = dataset.cuboid_batches()
        flat = sorted(i for batch in batches for i in batch)
        assert flat == list(range(6))

    def test_total_faces(self, dataset):
        assert dataset.total_faces() == 6 * 80
        assert dataset.total_faces(0) < dataset.total_faces()

    def test_save_load_roundtrip(self, dataset, tmp_path):
        summary = save_dataset(dataset, tmp_path / "out")
        assert summary["total_bytes"] > 0
        loaded = load_dataset(tmp_path / "out")
        assert loaded.name == dataset.name
        assert len(loaded) == len(dataset)
        for ours, theirs in zip(loaded.objects, dataset.objects):
            assert ours.num_rounds == theirs.num_rounds
            # Quantized positions stay within grid tolerance.
            assert np.abs(ours.positions - theirs.positions).max() < 1e-3
        # Decoded geometry matches structurally at every LOD.
        top = dataset.objects[0].max_lod
        assert (
            loaded.objects[0].decode(top).canonical_face_set()
            == dataset.objects[0].decode(top).canonical_face_set()
        )

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")


class TestProviderLocality:
    def test_cuboid_batched_access_reuses_cache(self):
        """Objects queried in cuboid order keep their decoded source hot:
        a second pass over the same cuboid must be all hits."""
        from repro.mesh import icosphere

        objects = [
            PPVPEncoder(max_lods=3).encode(icosphere(1, center=(i * 3.0, 0, 0)))
            for i in range(4)
        ]
        cache = DecodeCache()
        provider = DecodedObjectProvider("d", objects, cache)
        for obj_id in range(4):
            provider.get(obj_id, 1)
        misses_first = cache.misses
        for obj_id in range(4):
            provider.get(obj_id, 1)
        assert cache.misses == misses_first
        assert cache.hits >= 4
