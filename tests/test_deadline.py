"""Deadline-bounded queries return sound, anytime partial results.

The FPR contract makes partiality cheap to reason about: a pair is only
ever emitted once it is *confirmed*, so whatever a deadline-bounded run
has accumulated is a subset of the undeadlined run's answer — never a
wrong pair, never a retracted pair. These tests pin that property across
all three backends plus the bookkeeping around it (the
``QueryResult.completeness`` record, config/env resolution, and the
scheduler's refusal to retry an expired budget).

Determinism note: wall-clock deadlines stop at a timing-dependent
checkpoint, so cross-backend tests assert the *subset property* and the
completeness arithmetic, never "where it stopped". Fully deterministic
stop points use a counting cancellation token instead (cancellation and
deadline expiry share every checkpoint).
"""

import threading
from dataclasses import replace

import pytest

from repro.core import (
    CancellationToken,
    Deadline,
    DeadlineExceededError,
    EngineConfig,
    QuerySpec,
    ThreeDPro,
)
from repro.core.errors import EngineConfigError

SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=1.0),
    QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
    QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
]

SPEC_IDS = [spec.normalized().label for spec in SPECS]


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class CountingToken:
    """Cancels itself after ``limit`` checkpoint reads — deterministic."""

    def __init__(self, limit):
        self.limit = limit
        self.checks = 0
        self._lock = threading.Lock()

    @property
    def cancelled(self):
        with self._lock:
            self.checks += 1
            return self.checks > self.limit

    @property
    def reason(self):
        return "cancelled"


def _build(datasets, **config_kwargs):
    # Pin the execution shape: these tests pick their backend per case,
    # so a REPRO_QUERY_BACKEND/REPRO_QUERY_WORKERS environment (the CI
    # chaos matrix) must not silently rewire the "serial" engines.
    config_kwargs.setdefault("query_workers", 1)
    config_kwargs.setdefault("query_backend", "thread")
    engine = ThreeDPro(EngineConfig(paradigm="fpr", **config_kwargs))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


def _assert_sound_subset(partial, full):
    """Every pair in ``partial`` appears, confirmed, in ``full``."""
    assert set(partial.pairs) <= set(full.pairs)
    for tid, value in partial.pairs.items():
        reference = full.pairs[tid]
        if isinstance(value, list):
            assert set(value) <= set(reference), (tid, value, reference)
        else:
            assert value == reference, (tid, value, reference)


def _assert_completeness_arithmetic(result):
    comp = result.completeness
    assert comp.targets_total == (
        comp.targets_finished + comp.targets_inflight + comp.targets_unstarted
    )
    assert result.complete == comp.complete


class TestDeadlinePrimitive:
    def test_expires_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(seconds=5.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        deadline.check("here")  # within budget: no raise
        clock.now = 5.0
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check("target_loop")
        assert err.value.reason == "deadline"
        assert err.value.where == "target_loop"
        assert err.value.deadline_ms == 5000

    def test_no_budget_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(token=CancellationToken(), clock=clock)
        clock.now = 1e9
        assert not deadline.expired
        assert deadline.remaining() is None
        deadline.check()

    def test_cancellation_wins_over_expiry_reason(self):
        clock = FakeClock()
        token = CancellationToken()
        deadline = Deadline(seconds=1.0, token=token, clock=clock)
        clock.now = 2.0
        token.cancel()
        with pytest.raises(DeadlineExceededError) as err:
            deadline.check()
        assert err.value.reason == "cancelled"

    def test_token_latches_first_reason(self):
        token = CancellationToken()
        token.cancel("user hit ^C")
        token.cancel("later")
        assert token.cancelled
        assert token.reason == "user hit ^C"

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(seconds=0)
        with pytest.raises(ValueError):
            Deadline(seconds=-1)

    def test_after_ms(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.deadline_ms == 250
        assert deadline.remaining() == pytest.approx(0.25)
        assert Deadline.after_ms(None).remaining() is None

    def test_error_pickles(self):
        import pickle

        err = DeadlineExceededError("deadline", "decode", 42)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.reason == "deadline"
        assert clone.where == "decode"
        assert clone.deadline_ms == 42


class TestResolution:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            QuerySpec(
                kind="nn", source="a", target="b", deadline_ms=0
            ).normalized()

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE_MS", "100")
        assert EngineConfig(deadline_ms=50).resolve_deadline_ms() == 50
        assert EngineConfig().resolve_deadline_ms() == 100

    def test_env_validation_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE_MS", "soon")
        with pytest.raises(EngineConfigError):
            EngineConfig().resolve_deadline_ms()
        monkeypatch.setenv("REPRO_DEADLINE_MS", "0")
        with pytest.raises(EngineConfigError):
            EngineConfig().resolve_deadline_ms()

    def test_config_validation(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(deadline_ms=0)
        with pytest.raises(EngineConfigError):
            EngineConfig(worker_hang_timeout_seconds=0)
        with pytest.raises(EngineConfigError):
            EngineConfig(chunk_max_attempts=0)
        with pytest.raises(EngineConfigError):
            EngineConfig(pool_failure_threshold=0)


class TestSchedulerDeadline:
    def test_expired_budget_is_fatal_and_unretried(self):
        from repro.parallel.tasks import TaskScheduler

        clock = FakeClock()
        deadline = Deadline(seconds=1.0, clock=clock)
        clock.now = 2.0
        scheduler = TaskScheduler(workers=1, max_retries=3, deadline=deadline)
        with pytest.raises(DeadlineExceededError):
            scheduler.map(lambda item: item, [1, 2, 3])
        assert scheduler.retries == 0


class TestPartialResults:
    """Deterministic stop points via a counting cancellation token."""

    @pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
    def test_serial_partial_is_sound_subset(self, datasets, spec):
        engine = _build(datasets)
        full = engine.execute(spec)
        assert full.complete
        seen_partial = False
        for limit in (0, 3, 25, 200):
            partial = engine.execute(
                replace(spec, cancellation=CountingToken(limit))
            )
            _assert_sound_subset(partial, full)
            _assert_completeness_arithmetic(partial)
            if not partial.complete:
                seen_partial = True
                assert partial.completeness.reason == "cancelled"
        assert seen_partial, "no limit interrupted the query"

    def test_serial_partial_is_deterministic(self, datasets):
        # Two *fresh* engines: checkpoint counts include the decode
        # ladder, so identical stop points require identical (cold)
        # cache state — determinism is per engine-state, by design.
        spec = SPECS[0]
        first = _build(datasets).execute(replace(spec, cancellation=CountingToken(25)))
        second = _build(datasets).execute(replace(spec, cancellation=CountingToken(25)))
        assert list(first.pairs.items()) == list(second.pairs.items())
        assert first.completeness.as_dict() == second.completeness.as_dict()

    def test_immediate_cancel_returns_empty_partial(self, datasets):
        token = CancellationToken()
        token.cancel("caller gave up")
        engine = _build(datasets)
        result = engine.execute(replace(SPECS[0], cancellation=token))
        assert result.pairs == {}
        assert not result.complete
        comp = result.completeness
        assert comp.reason == "cancelled"
        assert comp.targets_finished == 0
        assert comp.targets_unstarted == comp.targets_total

    @pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
    def test_thread_partial_is_sound_subset(self, datasets, spec):
        serial = _build(datasets)
        full = serial.execute(spec)
        engine = _build(datasets, query_workers=4)
        partial = engine.execute(replace(spec, cancellation=CountingToken(10)))
        _assert_sound_subset(partial, full)
        _assert_completeness_arithmetic(partial)

    @pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
    def test_process_partial_is_sound_subset(self, datasets, spec):
        serial = _build(datasets)
        full = serial.execute(spec)
        engine = _build(datasets, query_workers=2, query_backend="process")
        partial = engine.execute(replace(spec, deadline_ms=1))
        _assert_sound_subset(partial, full)
        _assert_completeness_arithmetic(partial)
        assert partial.completeness.deadline_ms == 1

    @pytest.mark.parametrize("workers,backend", [
        (1, None), (4, "thread"), (2, "process"),
    ])
    def test_generous_deadline_is_invisible(self, datasets, workers, backend):
        kwargs = {"query_workers": workers}
        if backend is not None:
            kwargs["query_backend"] = backend
        serial = _build(datasets)
        full = serial.execute(SPECS[0])
        engine = _build(datasets, **kwargs)
        result = engine.execute(replace(SPECS[0], deadline_ms=600_000))
        assert result.complete
        assert list(result.pairs.items()) == list(full.pairs.items())
        comp = result.completeness
        assert comp.targets_finished == comp.targets_total
        assert comp.targets_unstarted == 0

    def test_partial_metric_and_log(self, datasets, caplog):
        import logging

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine = _build(datasets, metrics=registry)
        token = CancellationToken()
        token.cancel()
        with caplog.at_level(logging.WARNING, logger="repro"):
            engine.execute(replace(SPECS[0], cancellation=token))
        assert any(
            record.getMessage() == "partial_result" for record in caplog.records
        )
        text = registry.to_prometheus()
        assert 'repro_deadline_exceeded_total{reason="cancelled"} 1' in text

    def test_probe_query_carries_completeness(self, datasets, small_scene):
        token = CancellationToken()
        token.cancel()
        engine = _build(datasets)
        spec = QuerySpec(
            kind="within", source="nuclei_b", probe=small_scene.nuclei_a[0],
            distance=2.0, cancellation=token,
        )
        result = engine.execute(spec)
        assert not result.complete
        assert result.completeness.reason == "cancelled"
