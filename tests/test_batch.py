"""Batched refinement: the gather/segment layer and its engine parity.

Two layers of properties:

* ``repro.core.batch`` in isolation — the wave-batched kernels must
  agree with a plain per-job loop over the fused geometry kernels
  (exactly for intersection; up to early exit for distances), lane
  screening must be invisible, and the flush checkpoint must fire.
* the engine end to end — ``batched_refine=True`` (the default) must
  be byte-identical to ``batched_refine=False`` on every query kind,
  across backends, under injected decode faults, under deadlines
  (sound subsets), and through the streaming progress hook.

Satellites ride along: the ``_kth_smallest`` heap rewrite, the memoized
containment-stage AABBs, and uniform degraded accounting.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core import EngineConfig, QuerySpec, ThreeDPro
from repro.core.batch import (
    _lane_box_gap_sq,
    _screened_distance,
    _screened_intersect,
    batched_any_intersect,
    batched_min_distances,
)
from repro.core.refine import RefineContext, _kth_smallest
from repro.core.stats import QueryStats
from repro.faults import FaultInjector
from repro.geometry.distance import tri_tri_distance_batch
from repro.geometry.tritri import tri_tri_intersect_batch
from repro.parallel import Device, GeometryComputer


def _soup(rng, n, center, spread=1.0):
    """n random triangles scattered around ``center``."""
    base = rng.uniform(-spread, spread, size=(n, 1, 3)) + np.asarray(center)
    return base + rng.uniform(-0.4, 0.4, size=(n, 3, 3))


def _jobs(rng):
    """A mixed bag: interpenetrating, near-miss, far-apart, and empty sides."""
    empty = np.zeros((0, 3, 3))
    return [
        (_soup(rng, 7, (0, 0, 0)), _soup(rng, 9, (0.2, 0, 0))),     # overlapping
        (_soup(rng, 13, (0, 0, 0)), _soup(rng, 5, (10, 0, 0))),     # far apart
        (_soup(rng, 60, (0, 0, 0)), _soup(rng, 60, (2.5, 0, 0))),   # near miss, multi-wave
        (empty, _soup(rng, 4, (0, 0, 0))),                          # empty side
        (_soup(rng, 1, (5, 5, 5)), _soup(rng, 1, (5.1, 5, 5))),     # single pair
    ]


@pytest.fixture(scope="module")
def computer():
    # Small blocks so even the small soups above take several waves.
    return GeometryComputer(Device.CPU, cpu_block=8, gpu_block=64)


class TestBatchedKernels:
    """batched_* vs a per-job loop over the same fused kernels."""

    def test_any_intersect_matches_per_job_loop(self, computer):
        rng = np.random.default_rng(3)
        jobs = _jobs(rng)
        expected = [computer.intersects(a, b) for a, b in jobs]
        assert batched_any_intersect(computer, jobs) == expected

    def test_min_distances_exhaustive_are_exact(self, computer):
        rng = np.random.default_rng(4)
        jobs = _jobs(rng)
        got = batched_min_distances(computer, jobs)
        for (a, b), value in zip(jobs, got):
            if len(a) == 0 or len(b) == 0:
                assert value == math.inf
                continue
            lanes_a = np.repeat(a, len(b), axis=0)
            lanes_b = np.tile(b, (len(a), 1, 1))
            exact = float(tri_tri_distance_batch(lanes_a, lanes_b).min())
            assert value == pytest.approx(exact, abs=0.0)

    def test_min_distances_early_exit_is_sound(self, computer):
        rng = np.random.default_rng(5)
        jobs = _jobs(rng)
        threshold = 3.0
        exhaustive = batched_min_distances(computer, jobs)
        exited = batched_min_distances(computer, jobs, stop_below=threshold)
        for exact, value in zip(exhaustive, exited):
            if exact <= threshold:
                # Settled: any witness at or under the threshold is valid
                # and must itself be a realizable pair distance.
                assert value <= threshold
                assert value >= exact
            else:
                # Non-settling jobs exhaust their cross product: exact.
                assert value == exact

    def test_stats_count_every_buffered_pair(self, computer):
        rng = np.random.default_rng(6)
        jobs = [(_soup(rng, 11, (0, 0, 0)), _soup(rng, 7, (9, 0, 0)))]
        stats = {}
        batched_min_distances(computer, jobs, stats=stats)
        assert stats["pairs"] == 11 * 7

    def test_checkpoint_fires_per_flush(self, computer):
        rng = np.random.default_rng(7)
        jobs = [(_soup(rng, 40, (0, 0, 0)), _soup(rng, 40, (8, 0, 0)))]
        ticks = []
        batched_min_distances(computer, jobs, checkpoint=lambda: ticks.append(1))
        # 1600 lanes through a 64-lane buffer: many flushes, each ticked.
        assert len(ticks) >= 1600 // 64

    def test_empty_job_list(self, computer):
        assert batched_any_intersect(computer, []) == []
        assert batched_min_distances(computer, []) == []


class TestLaneScreening:
    """Screening must be invisible: same verdicts, same segment minima."""

    def _buffer(self, rng):
        chunks_a, chunks_b, starts, filled = [], [], [], 0
        for n, off in [(6, 0.1), (9, 4.0), (3, 0.0), (12, 30.0)]:
            starts.append(filled)
            chunks_a.append(_soup(rng, n, (0, 0, 0)))
            chunks_b.append(_soup(rng, n, (off, 0, 0)))
            filled += n
        return (
            np.concatenate(chunks_a),
            np.concatenate(chunks_b),
            np.asarray(starts, dtype=np.intp),
        )

    def test_gap_lower_bounds_every_lane(self):
        rng = np.random.default_rng(8)
        tris_a, tris_b, _ = self._buffer(rng)
        exact = tri_tri_distance_batch(tris_a, tris_b)
        lb = np.sqrt(_lane_box_gap_sq(tris_a, tris_b))
        assert (lb <= exact + 1e-12).all()

    def test_screened_intersect_matches_unscreened(self):
        rng = np.random.default_rng(9)
        tris_a, tris_b, starts = self._buffer(rng)
        screened = _screened_intersect(tris_a, tris_b, starts)
        assert np.array_equal(screened, tri_tri_intersect_batch(tris_a, tris_b))

    def test_screened_distance_preserves_segment_minima(self):
        rng = np.random.default_rng(10)
        tris_a, tris_b, starts = self._buffer(rng)
        screened = np.minimum.reduceat(
            _screened_distance(tris_a, tris_b, starts), starts
        )
        exact = np.minimum.reduceat(
            tri_tri_distance_batch(tris_a, tris_b, check_intersection=False), starts
        )
        assert np.array_equal(screened, exact)


class TestKthSmallestProperties:
    def test_matches_sorted_reference(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            n = int(rng.integers(1, 12))
            values = list(rng.choice([0.5, 1.0, 1.5, 2.0, 7.0], size=n))
            k = int(rng.integers(1, 15))
            assert _kth_smallest(values, k) == sorted(values)[min(k, n) - 1]

    def test_k_one_is_min(self):
        assert _kth_smallest([4.0, 2.0, 9.0], 1) == 2.0

    def test_k_beyond_length_is_max(self):
        assert _kth_smallest([4.0, 2.0], 99) == 4.0

    def test_ties(self):
        assert _kth_smallest([3.0, 3.0, 3.0, 1.0], 3) == 3.0

    def test_empty_is_inf(self):
        assert _kth_smallest([], 2) == math.inf

    def test_does_not_mutate_input(self):
        values = [5.0, 1.0, 3.0]
        _kth_smallest(values, 2)
        assert values == [5.0, 1.0, 3.0]


class _Dec:
    def __init__(self, triangles, lod=0):
        self.triangles = np.asarray(triangles, dtype=float).reshape(-1, 3, 3)
        self.lod = lod


class TestFacesAABBMemo:
    """Satellite: the containment stage's face AABBs are computed once
    per (side, object, served LOD) and dictionary-hits thereafter."""

    def _ctx(self):
        return RefineContext(
            computer=GeometryComputer(Device.CPU),
            stats=QueryStats(),
            target_provider=None,
            source_provider=None,
            lods=(0,),
        )

    def test_second_lookup_is_a_hit(self):
        ctx = self._ctx()
        dec = _Dec(np.arange(18, dtype=float).reshape(2, 3, 3), lod=3)
        first = ctx.faces_aabb("target", 7, dec)
        assert (ctx.aabb_cache_misses, ctx.aabb_cache_hits) == (1, 0)
        second = ctx.faces_aabb("target", 7, dec)
        assert (ctx.aabb_cache_misses, ctx.aabb_cache_hits) == (1, 1)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        assert np.array_equal(first[0], dec.triangles.min(axis=(0, 1)))
        assert np.array_equal(first[1], dec.triangles.max(axis=(0, 1)))

    def test_keyed_by_side_object_and_served_lod(self):
        ctx = self._ctx()
        tris = np.arange(9, dtype=float).reshape(1, 3, 3)
        ctx.faces_aabb("target", 1, _Dec(tris, lod=2))
        ctx.faces_aabb("source", 1, _Dec(tris, lod=2))   # other side: miss
        ctx.faces_aabb("target", 2, _Dec(tris, lod=2))   # other object: miss
        ctx.faces_aabb("target", 1, _Dec(tris, lod=1))   # degraded serve: miss
        ctx.faces_aabb("target", 1, _Dec(tris, lod=2))   # repeat: hit
        assert (ctx.aabb_cache_misses, ctx.aabb_cache_hits) == (4, 1)

    def test_intersection_join_populates_the_memo(self, encoder):
        # End to end: sources nested inside a target survive every SAT
        # round (surfaces disjoint) and land in the containment stage,
        # where the repeated target-AABB lookups must hit the memo.
        from repro.compression import PPVPEncoder
        from repro.core.refine import RefineContext as Ctx
        from repro.mesh import icosphere
        from repro.storage import Dataset

        # Two targets sharing the same nested sources: the second
        # target's containment stage must hit the memoized source boxes
        # (the context, and with it the memo, is per-chunk).
        outer = [
            icosphere(1, radius=10.0),
            icosphere(1, radius=10.0, center=(0.5, 0, 0)),
        ]
        inner = [
            icosphere(1, radius=1.0, center=(2.0, 0, 0)),
            icosphere(1, radius=1.0, center=(-2.0, 0, 0)),
            icosphere(1, radius=1.0, center=(0, 2.0, 0)),
        ]
        nested = {
            "outer": Dataset.from_polyhedra("outer", outer, encoder),
            "inner": Dataset.from_polyhedra("inner", inner, encoder),
        }
        seen = []
        original = Ctx.faces_aabb

        def spy(self, side, obj_id, dec):
            box = original(self, side, obj_id, dec)
            seen.append((self.aabb_cache_hits, self.aabb_cache_misses))
            return box

        Ctx.faces_aabb = spy
        try:
            engine = _build(nested, query_workers=1)
            result = engine.intersection_join("outer", "inner")
        finally:
            Ctx.faces_aabb = original
        assert list(result.pairs.values()) == [[0, 1, 2], [0, 1, 2]]
        assert seen, "containment stage never consulted the AABB memo"
        hits, misses = seen[-1]
        assert hits > 0, "no repeated lookup ever hit the memo"


def _build(datasets, **config_kwargs):
    engine = ThreeDPro(EngineConfig(paradigm="fpr", **config_kwargs))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


def _comparable(result, with_cache):
    """Everything the two refinement modes must agree on.

    Cache counters are deterministic only single-worker: chunk-to-worker
    assignment (and with it cross-chunk cache reuse) is scheduling-
    dependent under thread/process fan-out in *both* modes, the same
    exclusion ``test_parallel_query._comparable_counters`` makes.
    """
    funnel = result.stats.funnel.as_dict()
    if not with_cache:
        for stage in funnel.get("stages", {}).values():
            for key in ("cache_hits", "cache_misses", "decoded_objects",
                        "decoded_bytes"):
                stage.pop(key, None)
    return {
        "pairs": list(result.pairs.items()),
        "matches": result.matches,
        "degraded_targets": result.degraded_targets,
        "funnel": funnel,
        "targets": result.stats.targets,
        "candidates": result.stats.candidates,
        "results": result.stats.results,
        "degraded_objects": result.stats.degraded_objects,
        # face_pairs_by_lod is deliberately absent: the two modes walk
        # the same candidate pairs but with different early-exit block
        # granularity, so raw face-pair lane counts differ. Backend
        # invariance of that counter *within* a mode is covered by
        # test_parallel_query._comparable_counters.
        "pairs_evaluated_by_lod": sorted(result.stats.pairs_evaluated_by_lod.items()),
        "pairs_pruned_by_lod": sorted(result.stats.pairs_pruned_by_lod.items()),
    }


PARITY_SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=1.0),
    QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
    QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
]

PARITY_IDS = [spec.normalized().label for spec in PARITY_SPECS]

BACKENDS = [
    pytest.param({"query_workers": 1}, id="serial"),
    pytest.param({"query_workers": 4, "query_backend": "thread"}, id="thread"),
]


class TestBatchedMatchesPerPair:
    """The tentpole property: batched refinement is invisible."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("spec", PARITY_SPECS, ids=PARITY_IDS)
    def test_clean_runs_identical(self, datasets, spec, backend):
        per_pair = _build(datasets, batched_refine=False, **backend).execute(spec)
        batched = _build(datasets, batched_refine=True, **backend).execute(spec)
        with_cache = backend.get("query_workers") == 1
        assert _comparable(batched, with_cache) == _comparable(per_pair, with_cache)
        for result in (per_pair, batched):
            assert result.funnel.violations(result.stats, strict=True) == []

    @pytest.mark.parametrize("spec", PARITY_SPECS[:2], ids=PARITY_IDS[:2])
    def test_process_backend_identical(self, datasets, spec):
        backend = {"query_workers": 2, "query_backend": "process"}
        per_pair = _build(datasets, batched_refine=False, **backend).execute(spec)
        batched = _build(datasets, batched_refine=True, **backend).execute(spec)
        assert _comparable(batched, False) == _comparable(per_pair, False)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("spec", PARITY_SPECS[:2], ids=PARITY_IDS[:2])
    def test_faulted_runs_identical(self, datasets, spec, backend):
        def faulted(batched):
            injector = FaultInjector(seed=11, decode_error_rate=0.3)
            engine = _build(
                datasets, batched_refine=batched, fault_injector=injector, **backend
            )
            result = engine.execute(spec)
            assert injector.counts.get("decode", 0) > 0, "no faults fired"
            return result

        per_pair, batched = faulted(False), faulted(True)
        with_cache = backend.get("query_workers") == 1
        assert _comparable(batched, with_cache) == _comparable(per_pair, with_cache)
        for result in (per_pair, batched):
            assert result.funnel.violations(result.stats, strict=True) == []

    def test_containment_identical(self, datasets, small_scene):
        point = tuple(small_scene.nuclei_a[0].vertices.mean(axis=0))
        spec = QuerySpec(kind="containment", source="nuclei_a", point=point)
        per_pair = _build(datasets, batched_refine=False).execute(spec)
        batched = _build(datasets, batched_refine=True).execute(spec)
        assert _comparable(batched, True) == _comparable(per_pair, True)

    @pytest.mark.parametrize("spec", PARITY_SPECS[:2], ids=PARITY_IDS[:2])
    def test_deadline_partials_are_sound_subsets(self, datasets, spec):
        reference = _build(datasets, batched_refine=False).execute(spec)
        partial = _build(datasets, batched_refine=True).execute(
            replace(spec, deadline_ms=1)
        )
        comp = partial.completeness
        assert comp is not None
        assert comp.targets_total == (
            comp.targets_finished + comp.targets_inflight + comp.targets_unstarted
        )
        assert set(partial.pairs) <= set(reference.pairs)
        for tid, matches in partial.pairs.items():
            assert matches == reference.pairs[tid]
        assert partial.funnel.violations(partial.stats, strict=False) == []

    @pytest.mark.parametrize("spec", PARITY_SPECS[:2], ids=PARITY_IDS[:2])
    def test_streamed_frames_identical(self, datasets, spec):
        def frames(batched):
            collected = []
            engine = _build(datasets, batched_refine=batched)
            engine.execute(
                replace(spec, progress=lambda tid, lod, m: collected.append(
                    (tid, lod, list(m))
                ))
            )
            return collected

        assert frames(True) == frames(False)


class TestDegradedAccountingUniform:
    """Satellite: source-decode failures settle identically whether they
    surface as a DecodeFailureError or as a zero-face degraded serve —
    and identically across the batched and per-pair paths."""

    @pytest.mark.parametrize("rate", [0.3, 0.9])
    def test_source_faults_reconcile(self, datasets, rate):
        spec = QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a")
        results = {}
        for batched in (False, True):
            engine = _build(
                datasets,
                batched_refine=batched,
                fault_injector=FaultInjector(seed=11, decode_error_rate=rate),
            )
            results[batched] = engine.execute(spec)
        per_pair, batched = results[False], results[True]
        assert batched.stats.degraded_objects == per_pair.stats.degraded_objects
        assert batched.degraded_targets == per_pair.degraded_targets
        assert list(batched.pairs.items()) == list(per_pair.pairs.items())
        for result in (per_pair, batched):
            assert result.funnel.violations(result.stats, strict=True) == []
            degraded = sum(s.degraded for s in result.funnel.stages.values())
            if rate == 0.9:
                assert result.stats.degraded_objects > 0
                assert degraded > 0
