"""The query service: wire parity, coalescing, streaming, admission.

The acceptance properties pinned here:

* a served query returns byte-identical pairs to in-process
  ``engine.execute(spec)``;
* two identical concurrent requests coalesce into ONE execution (one
  decode fan-out, verified via the decode-cache miss counter);
* streaming frames concatenate to exactly the buffered result;
* overload returns 429 while the in-flight query completes unharmed.

Coalescing and admission tests drive :class:`QueryService` directly
with a gated ``_execute`` so overlap is deterministic, not timing-luck;
wire parity and error mapping go over real HTTP.
"""

import json
import threading
import time

import pytest

from repro.core import EngineConfig, ThreeDPro
from repro.core.plan import QuerySpec
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionController, OverloadedError
from repro.serve.app import QueryService, make_server
from repro.serve.client import RemoteEngine, RemoteError
from repro.serve.stream import FrameEmitter, assemble_frames
from repro.serve.wire import spec_key


def _engine(datasets, **config_kwargs):
    config_kwargs.setdefault("metrics", MetricsRegistry())
    engine = ThreeDPro(EngineConfig(**config_kwargs))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


@pytest.fixture(scope="module")
def served(datasets):
    """One HTTP server over the shared datasets, plus a local twin engine."""
    engine = _engine(datasets)
    server = make_server(engine, port=0, max_inflight=4, max_queue=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    remote = RemoteEngine(f"http://127.0.0.1:{port}")
    local = _engine(datasets)
    yield remote, local, engine
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    assert not thread.is_alive()


SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=2.0),
    QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
]


class TestWireParity:
    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.kind)
    def test_remote_pairs_identical_to_local(self, served, spec):
        remote, local, _ = served
        assert remote.execute(spec).pairs == local.execute(spec).pairs

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.kind)
    def test_streamed_result_equals_buffered(self, served, spec):
        remote, local, _ = served
        frames = list(remote.stream(spec))
        kinds = [f["frame"] for f in frames]
        assert kinds[0] == "hello"
        assert kinds[-1] == "summary"
        assembled = assemble_frames(frames)
        buffered = local.execute(spec)
        assert assembled.pairs == buffered.pairs
        assert assembled.stats.results == buffered.stats.results
        assert assembled.completeness.complete

    def test_healthz_and_datasets(self, served):
        remote, _, engine = served
        assert remote.healthz()["ok"] is True
        assert remote.datasets() == engine.dataset_names

    def test_metrics_exposes_query_latency(self, served):
        remote, _, _ = served
        text = remote.metrics_text()
        assert "repro_query_latency_seconds" in text
        assert "repro_server_inflight" in text

    def test_unknown_dataset_maps_404(self, served):
        remote, _, _ = served
        spec = QuerySpec(kind="intersection", source="nope", target="nuclei_a")
        with pytest.raises(RemoteError) as err:
            remote.execute(spec)
        assert err.value.status == 404

    def test_malformed_payload_maps_400(self, served):
        remote, _, _ = served
        with pytest.raises(RemoteError) as err:
            remote.execute_raw({
                "schema_version": 1, "kind": "intersection",
                "source": "nuclei_b", "target": "nuclei_a", "bogus": True,
            })
        assert err.value.status == 400
        assert "bogus" in err.value.message


class TestCoalescing:
    def test_identical_concurrent_requests_share_one_execution(self, datasets):
        engine = _engine(datasets)
        service = QueryService(engine, max_inflight=4, max_queue=8)
        spec = QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a")
        payload = spec.to_wire()

        started = threading.Event()
        release = threading.Event()
        calls = []
        real = service._execute

        def gated(s):
            calls.append(s)
            started.set()
            assert release.wait(timeout=30)
            return real(s)

        service._execute = gated
        results = {}

        def request(name):
            results[name] = service.query(payload)

        leader = threading.Thread(target=request, args=("leader",))
        leader.start()
        assert started.wait(timeout=30)
        follower = threading.Thread(target=request, args=("follower",))
        follower.start()
        # The follower registers in the single-flight map (and bumps the
        # coalesced counter) before blocking on the leader's event.
        coalesced = engine.metrics.counter("repro_server_coalesced_total")
        deadline = time.monotonic() + 30
        while coalesced.value() < 1:
            assert time.monotonic() < deadline, "follower never coalesced"
            time.sleep(0.005)
        release.set()
        leader.join(timeout=60)
        follower.join(timeout=60)

        assert len(calls) == 1  # exactly one execution
        leader_wire, leader_coalesced = results["leader"]
        follower_wire, follower_coalesced = results["follower"]
        assert leader_wire == follower_wire
        assert {leader_coalesced, follower_coalesced} == {False, True}

    def test_coalesced_pair_costs_one_decode_fanout(self, datasets):
        """Decode-cache misses for a coalesced pair == one cold run's misses."""
        solo = _engine(datasets)
        spec = QuerySpec(kind="within", source="nuclei_b", target="nuclei_a",
                         distance=2.0)
        solo.execute(spec)
        solo_misses = solo.cache.misses
        assert solo_misses > 0

        engine = _engine(datasets)
        service = QueryService(engine, max_inflight=4, max_queue=8)
        payload = spec.to_wire()
        started = threading.Event()
        release = threading.Event()
        real = service._execute

        def gated(s):
            started.set()
            assert release.wait(timeout=30)
            return real(s)

        service._execute = gated
        threads = [
            threading.Thread(target=service.query, args=(payload,))
            for _ in range(2)
        ]
        threads[0].start()
        assert started.wait(timeout=30)
        threads[1].start()
        coalesced = engine.metrics.counter("repro_server_coalesced_total")
        deadline = time.monotonic() + 30
        while coalesced.value() < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(timeout=60)
        assert engine.cache.misses == solo_misses

    def test_sequential_requests_do_not_coalesce(self, datasets):
        engine = _engine(datasets)
        service = QueryService(engine)
        payload = QuerySpec(
            kind="intersection", source="nuclei_b", target="nuclei_a"
        ).to_wire()
        _, first_coalesced = service.query(payload)
        _, second_coalesced = service.query(payload)
        assert first_coalesced is False
        assert second_coalesced is False

    def test_spec_key_normalizes_spelling(self):
        nn = QuerySpec(kind="nn", source="b", target="a")
        knn1 = QuerySpec(kind="knn", source="b", target="a", k=1)
        knn2 = QuerySpec(kind="knn", source="b", target="a", k=2)
        assert spec_key(nn) == spec_key(knn1)
        assert spec_key(nn) != spec_key(knn2)

    def test_different_deadlines_do_not_coalesce(self):
        a = QuerySpec(kind="intersection", source="b", target="a",
                      deadline_ms=100)
        b = QuerySpec(kind="intersection", source="b", target="a")
        assert spec_key(a) != spec_key(b)


class TestAdmission:
    def test_overload_rejects_429_without_disturbing_inflight(self, datasets):
        engine = _engine(datasets)
        service = QueryService(engine, max_inflight=1, max_queue=0)
        slow_started = threading.Event()
        release = threading.Event()
        real = service._execute

        def gated(s):
            slow_started.set()
            assert release.wait(timeout=30)
            return real(s)

        service._execute = gated
        payload_a = QuerySpec(
            kind="intersection", source="nuclei_b", target="nuclei_a"
        ).to_wire()
        payload_b = QuerySpec(
            kind="within", source="nuclei_b", target="nuclei_a", distance=1.0
        ).to_wire()

        outcome = {}

        def first():
            outcome["first"] = service.query(payload_a)

        t = threading.Thread(target=first)
        t.start()
        assert slow_started.wait(timeout=30)
        # Different spec (no coalescing), no free slot, no queue: 429.
        with pytest.raises(OverloadedError) as err:
            service.query(payload_b)
        assert err.value.status == 429
        rejected = engine.metrics.counter("repro_server_rejected_total")
        assert rejected.value(reason="queue_full") == 1
        release.set()
        t.join(timeout=60)
        # The in-flight query finished unharmed.
        wire, _ = outcome["first"]
        assert wire["total_matches"] >= 0
        assert wire["completeness"]["complete"] is True

    def test_queue_timeout_maps_503(self):
        controller = AdmissionController(
            1, 1, queue_timeout_seconds=0.05, metrics=MetricsRegistry()
        )
        release = threading.Event()

        def hold():
            with controller.slot():
                release.wait(timeout=30)

        t = threading.Thread(target=hold)
        t.start()
        deadline = time.monotonic() + 30
        while controller.inflight < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        with pytest.raises(OverloadedError) as err:
            with controller.slot():
                pass
        assert err.value.status == 503
        assert err.value.reason == "queue_timeout"
        release.set()
        t.join(timeout=10)
        assert controller.inflight == 0

    def test_gauges_track_inflight(self):
        registry = MetricsRegistry()
        controller = AdmissionController(2, 2, metrics=registry)
        gauge = registry.gauge("repro_server_inflight")
        with controller.slot():
            assert gauge.value() == 1
        assert gauge.value() == 0


class TestStreamingUnits:
    def test_emitter_deduplicates_and_flushes(self, datasets):
        engine = _engine(datasets)
        spec = QuerySpec(kind="within", source="nuclei_b", target="nuclei_a",
                         distance=2.0)
        chunks = []
        emitter = FrameEmitter(chunks.append)
        emitter.emit_hello(spec)
        result = engine.execute(spec)
        # No live hook ran (buffered execution) — the catch-up flush must
        # carry the entire answer.
        emitter.flush_missing(result)
        emitter.emit_summary(result)
        frames = [json.loads(line) for line in b"".join(chunks).splitlines()]
        assembled = assemble_frames(frames)
        assert assembled.pairs == result.pairs
        # Flushing again adds nothing: every match was already emitted.
        before = len(chunks)
        emitter.flush_missing(result)
        assert len(chunks) == before

    def test_stream_with_live_hook_has_no_catchup_frames(self, served):
        """Thread/serial backends emit everything live; lod=null only
        appears for backends that strip the in-process hook."""
        remote, _, _ = served
        spec = QuerySpec(kind="within", source="nuclei_b", target="nuclei_a",
                         distance=2.0)
        frames = list(remote.stream(spec))
        pair_frames = [f for f in frames if f["frame"] == "pairs"]
        assert pair_frames, "expected at least one pairs frame"
        assert all(f["lod"] is not None for f in pair_frames)

    def test_error_frame_raises_on_assembly(self):
        with pytest.raises(RuntimeError, match="boom"):
            assemble_frames([
                {"frame": "hello", "schema_version": 1, "spec": {}},
                {"frame": "error", "status": 500, "error": "boom"},
            ])


class TestProcessBackendStreaming:
    def test_process_backend_streams_via_catchup(self, datasets, tmp_path):
        """Workers cannot call back across the process boundary — the
        catch-up flush must still deliver frame-concat == buffered."""
        from repro.storage.store import save_dataset

        for name, dataset in datasets.items():
            save_dataset(dataset, tmp_path / name)
        engine = ThreeDPro(EngineConfig(
            query_workers=2, query_backend="process",
            metrics=MetricsRegistry(),
        ))
        from repro.storage.store import load_dataset
        for name in datasets:
            engine.load_dataset(load_dataset(tmp_path / name))
        service = QueryService(engine, max_inflight=2, max_queue=2)
        spec = QuerySpec(kind="intersection", source="nuclei_b",
                         target="nuclei_a")
        chunks = []
        service.run_stream(spec, FrameEmitter(chunks.append))
        frames = [json.loads(line) for line in b"".join(chunks).splitlines()]
        assembled = assemble_frames(frames)
        buffered = engine.execute(spec)
        assert assembled.pairs == buffered.pairs
