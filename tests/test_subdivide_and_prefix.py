"""Tests for midpoint subdivision and progressive blob prefixes."""

import numpy as np
import pytest

from repro.compression import PPVPEncoder, deserialize_object, serialize_object
from repro.compression.serialize import extract_lod_prefix
from repro.mesh import (
    icosphere,
    mesh_surface_area,
    mesh_volume,
    subdivide_midpoint,
    tetrahedron,
    validate_polyhedron,
)


class TestSubdivision:
    def test_face_count_quadruples(self):
        mesh = icosphere(1)
        assert subdivide_midpoint(mesh).num_faces == 4 * mesh.num_faces
        assert subdivide_midpoint(mesh, rounds=2).num_faces == 16 * mesh.num_faces

    def test_zero_rounds_identity(self):
        mesh = tetrahedron()
        out = subdivide_midpoint(mesh, rounds=0)
        assert out.canonical_face_set() == mesh.canonical_face_set()

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            subdivide_midpoint(tetrahedron(), rounds=-1)

    def test_surface_preserved_exactly(self):
        # Midpoint split keeps the surface point set: volume and area equal.
        mesh = icosphere(1, radius=1.5)
        fine = subdivide_midpoint(mesh)
        assert mesh_volume(fine) == pytest.approx(mesh_volume(mesh))
        assert mesh_surface_area(fine) == pytest.approx(mesh_surface_area(mesh))

    def test_result_is_valid_closed_mesh(self):
        for base in (tetrahedron(), icosphere(1)):
            validate_polyhedron(subdivide_midpoint(base, rounds=2))

    def test_subdivided_mesh_feeds_the_codec(self):
        mesh = subdivide_midpoint(tetrahedron(), rounds=3)  # 256 faces
        obj = PPVPEncoder(max_lods=4).encode(mesh)
        assert obj.max_lod >= 2
        restored = obj.decode(obj.max_lod)
        assert restored.canonical_face_set() == mesh.canonical_face_set()


class TestLodPrefix:
    @pytest.fixture(scope="class")
    def blob(self):
        return serialize_object(PPVPEncoder(max_lods=5).encode(icosphere(2)))

    def test_prefix_is_smaller(self, blob):
        full = deserialize_object(blob)
        for lod in range(full.max_lod):
            assert len(extract_lod_prefix(blob, lod)) < len(blob)

    def test_full_prefix_equals_original(self, blob):
        full = deserialize_object(blob)
        again = deserialize_object(extract_lod_prefix(blob, full.max_lod))
        assert again.num_rounds == full.num_rounds
        assert (
            again.decode(again.max_lod).canonical_face_set()
            == full.decode(full.max_lod).canonical_face_set()
        )

    def test_prefix_decodes_to_matching_lod(self, blob):
        full = deserialize_object(blob)
        for lod in full.lods:
            prefix = deserialize_object(extract_lod_prefix(blob, lod))
            assert (
                prefix.decode(prefix.max_lod).canonical_face_set()
                == full.decode(lod).canonical_face_set()
            )

    def test_prefix_sizes_monotone(self, blob):
        full = deserialize_object(blob)
        sizes = [len(extract_lod_prefix(blob, lod)) for lod in full.lods]
        assert sizes == sorted(sizes)

    def test_prefix_preserves_original_mbb(self, blob):
        # The MBB in the header is the original object's (used by the
        # global index even before refinement data arrives).
        full = deserialize_object(blob)
        coarse = deserialize_object(extract_lod_prefix(blob, 0))
        assert coarse.aabb == full.aabb

    def test_bad_lod_rejected(self, blob):
        full = deserialize_object(blob)
        with pytest.raises(ValueError):
            extract_lod_prefix(blob, full.max_lod + 1)
        with pytest.raises(ValueError):
            extract_lod_prefix(blob, -1)
