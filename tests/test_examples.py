"""Smoke checks for the example scripts.

Every example must at least compile; the fastest one runs end to end so
a broken public API surfaces immediately. (The slower examples are
exercised by their underlying integration tests.)
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4


def test_compression_explorer_runs():
    result = subprocess.run(
        [sys.executable, "examples/compression_explorer.py"],
        cwd=Path(__file__).parent.parent,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "subset guarantee" in result.stdout
    assert "persistence" in result.stdout
