"""Tests for varints, bit streams, Huffman coding, and object serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    PPVPEncoder,
    deserialize_object,
    serialize_object,
    serialized_segment_sizes,
)
from repro.compression.bits import BitReader, BitWriter
from repro.compression.entropy import huffman_decode, huffman_encode
from repro.compression.serialize import SerializationError
from repro.compression.varint import (
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)
from repro.mesh import icosphere, validate_polyhedron
from tests.test_compression_classify import dented_icosphere


class TestVarint:
    @given(st.integers(0, 2**63))
    def test_uvarint_roundtrip(self, value):
        buf = bytearray()
        write_uvarint(buf, value)
        decoded, offset = read_uvarint(bytes(buf), 0)
        assert decoded == value
        assert offset == len(buf)

    @given(st.integers(-(2**62), 2**62))
    def test_svarint_roundtrip(self, value):
        buf = bytearray()
        write_svarint(buf, value)
        decoded, offset = read_svarint(bytes(buf), 0)
        assert decoded == value

    def test_negative_uvarint_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)

    def test_truncated_read(self):
        with pytest.raises(EOFError):
            read_uvarint(b"\x80", 0)

    def test_small_values_one_byte(self):
        buf = bytearray()
        write_uvarint(buf, 127)
        assert len(buf) == 1


class TestBits:
    @given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)), max_size=50))
    def test_roundtrip_mixed_widths(self, items):
        writer = BitWriter()
        for value, width in items:
            writer.write(value & ((1 << width) - 1), width)
        reader = BitReader(writer.getvalue())
        for value, width in items:
            assert reader.read(width) == value & ((1 << width) - 1)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    def test_read_past_end(self):
        reader = BitReader(b"\xff")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)


class TestHuffman:
    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, data):
        assert huffman_decode(huffman_encode(data)) == data

    def test_empty(self):
        assert huffman_decode(huffman_encode(b"")) == b""

    def test_single_symbol(self):
        data = b"a" * 1000
        blob = huffman_encode(data)
        assert huffman_decode(blob) == data
        assert len(blob) < len(data) / 4

    def test_compresses_skewed_data(self):
        data = b"abcd" * 10 + b"a" * 5000
        assert len(huffman_encode(data)) < len(data)


class TestObjectSerialization:
    @pytest.fixture(scope="class")
    def compressed(self):
        mesh, _ = dented_icosphere(subdivisions=2)
        return PPVPEncoder(max_lods=4).encode(mesh)

    @pytest.mark.parametrize("backend", ["none", "huffman", "zlib"])
    def test_roundtrip_structure(self, compressed, backend):
        blob = serialize_object(compressed, quant_bits=16, backend=backend)
        restored = deserialize_object(blob)
        assert restored.num_rounds == compressed.num_rounds
        assert restored.rounds_per_lod == compressed.rounds_per_lod
        assert np.array_equal(
            np.sort(restored.base_faces, axis=None),
            np.sort(compressed.base_faces, axis=None),
        )
        for ours, theirs in zip(restored.rounds, compressed.rounds):
            assert ours == theirs

    def test_positions_within_quantization_error(self, compressed):
        blob = serialize_object(compressed, quant_bits=16)
        restored = deserialize_object(blob)
        span = max(compressed.aabb.extents)
        tolerance = span / (2**16 - 1)
        assert np.abs(restored.positions - compressed.positions).max() <= tolerance

    def test_all_lods_decode_and_validate(self, compressed):
        restored = deserialize_object(serialize_object(compressed))
        for lod in restored.lods:
            validate_polyhedron(restored.decode(lod).compacted(), check_degenerate=False)

    def test_higher_quantization_is_smaller(self, compressed):
        small = serialize_object(compressed, quant_bits=10)
        large = serialize_object(compressed, quant_bits=20)
        assert len(small) < len(large)

    def test_entropy_coding_never_hurts(self, compressed):
        # Segment coding is adaptive: huffman is kept only when smaller.
        raw = serialize_object(compressed, backend="none")
        packed = serialize_object(compressed, backend="huffman")
        assert len(packed) <= len(raw)

    def test_entropy_coding_wins_on_low_entropy_payload(self):
        # A large mesh with coarse quantization produces segments big and
        # skewed enough for Huffman to strictly beat the raw layout.
        big = PPVPEncoder(max_lods=4).encode(icosphere(3))
        raw = serialize_object(big, quant_bits=6, backend="none")
        packed = serialize_object(big, quant_bits=6, backend="huffman")
        assert len(packed) < len(raw)

    def test_segment_sizes_sum_to_total(self, compressed):
        blob = serialize_object(compressed)
        sizes = serialized_segment_sizes(blob)
        assert (
            sizes["header"] + sizes["base"] + sum(sizes["rounds"]) + sizes["trailer"]
            == sizes["total"]
        )
        assert len(sizes["rounds"]) == compressed.num_rounds

    def test_compression_beats_flat_representation(self, compressed):
        # Flat full-resolution storage: 3 float64 per vertex + 3 int32 per face.
        full = compressed.decode(compressed.max_lod).compacted()
        flat_bytes = full.num_vertices * 24 + full.num_faces * 12
        blob = serialize_object(compressed, quant_bits=14)
        assert len(blob) < flat_bytes

    def test_bad_magic_rejected(self, compressed):
        blob = bytearray(serialize_object(compressed))
        blob[0] = ord("X")
        with pytest.raises(SerializationError):
            deserialize_object(bytes(blob))

    def test_bad_quant_bits_rejected(self, compressed):
        with pytest.raises(ValueError):
            serialize_object(compressed, quant_bits=2)
        with pytest.raises(ValueError):
            serialize_object(compressed, quant_bits=40)

    def test_unknown_backend_rejected(self, compressed):
        with pytest.raises(ValueError):
            serialize_object(compressed, backend="lzma")
