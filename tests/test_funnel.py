"""The refinement funnel: units, invariants, and engine integration.

The unit half exercises :class:`~repro.obs.funnel.QueryFunnel` directly
(merge, pickling, the violation checks); the integration half runs real
queries and asserts the funnel reconciles exactly with the pairs ledger
and the result count — the property the ``check_observability`` [8/8]
gate enforces in CI.
"""

import pickle

import pytest

from repro.core import EngineConfig, QuerySpec, ThreeDPro
from repro.core.stats import QueryStats
from repro.obs.funnel import FunnelStage, QueryFunnel
from repro.obs.metrics import MetricsRegistry


def _consistent_funnel() -> QueryFunnel:
    funnel = QueryFunnel(candidates=10, mbb_pruned=2)
    stage = funnel.stage(0)
    stage.evaluated = 8
    stage.settled = 5
    stage.confirmed = 2
    stage.rejected = 2
    stage.degraded = 1
    top = funnel.stage(3)
    top.evaluated = 3
    top.settled = 3
    top.rejected = 3
    return funnel


class TestFunnelStage:
    def test_merge_adds_every_counter(self):
        a = FunnelStage(evaluated=2, settled=1, confirmed=1, cache_hits=3,
                        decoded_bytes=100)
        b = FunnelStage(evaluated=5, settled=2, rejected=2, cache_misses=1,
                        decoded_bytes=50, decode_failures=1)
        a.merge(b)
        assert a.evaluated == 7
        assert a.settled == 3
        assert a.confirmed == 1
        assert a.rejected == 2
        assert a.cache_hits == 3
        assert a.cache_misses == 1
        assert a.decoded_bytes == 150
        assert a.decode_failures == 1

    def test_as_dict_is_complete(self):
        keys = set(FunnelStage().as_dict())
        assert keys == {
            "evaluated", "settled", "confirmed", "rejected", "degraded",
            "cache_hits", "cache_misses", "decoded_objects", "decoded_bytes",
            "decode_failures",
        }


class TestQueryFunnel:
    def test_stage_is_created_on_demand_and_cached(self):
        funnel = QueryFunnel()
        stage = funnel.stage(2)
        stage.evaluated += 1
        assert funnel.stage(2) is stage
        assert funnel.stages == {2: stage}

    def test_confirmed_total_spans_all_paths(self):
        funnel = QueryFunnel(filter_confirmed=3, confirmed_final=2)
        funnel.stage(0).confirmed = 4
        funnel.stage(1).confirmed = 1
        assert funnel.confirmed_total == 10

    def test_merge(self):
        a = _consistent_funnel()
        b = _consistent_funnel()
        a.merge(b)
        assert a.candidates == 20
        assert a.mbb_pruned == 4
        assert a.stage(0).evaluated == 16
        assert a.stage(3).settled == 6
        assert a.violations() == []

    def test_pickle_roundtrip(self):
        funnel = _consistent_funnel()
        clone = pickle.loads(pickle.dumps(funnel))
        assert clone.as_dict() == funnel.as_dict()

    def test_summary_mentions_key_counts(self):
        text = _consistent_funnel().summary()
        assert "candidates=10" in text
        assert "evaluated=11" in text
        assert "confirmed=2" in text


class TestViolations:
    def test_consistent_funnel_is_clean(self):
        assert _consistent_funnel().violations() == []

    def test_settled_over_evaluated_flagged(self):
        funnel = QueryFunnel(candidates=5)
        stage = funnel.stage(0)
        stage.evaluated = 1
        stage.settled = 2
        stage.rejected = 2
        assert any("settled 2 > evaluated 1" in v for v in funnel.violations())

    def test_split_must_sum_to_settled(self):
        funnel = QueryFunnel(candidates=5)
        stage = funnel.stage(0)
        stage.evaluated = 3
        stage.settled = 3
        stage.confirmed = 1  # rejected/degraded missing
        assert any("!= settled" in v for v in funnel.violations())

    def test_mbb_pruned_bounded_by_candidates(self):
        funnel = QueryFunnel(candidates=1, mbb_pruned=2)
        assert any("mbb_pruned" in v for v in funnel.violations())

    def test_evaluated_bounded_by_surviving_candidates(self):
        funnel = QueryFunnel(candidates=3, mbb_pruned=1)
        funnel.stage(0).evaluated = 5
        assert any("surviving" in v for v in funnel.violations())

    def test_ledger_agreement(self):
        funnel = _consistent_funnel()
        stats = QueryStats(query="q")
        stats.candidates = 10
        stats.pairs_evaluated_by_lod[0] = 8
        stats.pairs_pruned_by_lod[0] = 5
        stats.pairs_evaluated_by_lod[3] = 3
        stats.pairs_pruned_by_lod[3] = 3
        assert funnel.violations(stats) == []
        stats.pairs_evaluated_by_lod[0] = 7  # drift
        assert any("ledger evaluated" in v for v in funnel.violations(stats))

    def test_strict_requires_results_accounted(self):
        funnel = _consistent_funnel()
        stats = QueryStats(query="q")
        stats.candidates = 10
        stats.pairs_evaluated_by_lod.update({0: 8, 3: 3})
        stats.pairs_pruned_by_lod.update({0: 5, 3: 3})
        stats.results = 2
        assert funnel.violations(stats, strict=True) == []
        stats.results = 7
        assert any(
            "confirmed_total" in v for v in funnel.violations(stats, strict=True)
        )


class TestStatsIntegration:
    def test_stats_merge_merges_funnel(self):
        a = QueryStats(query="q")
        b = QueryStats(query="q")
        a.funnel.candidates = 2
        b.funnel.candidates = 3
        b.funnel.stage(1).evaluated = 4
        a.merge(b)
        assert a.funnel.candidates == 5
        assert a.funnel.stage(1).evaluated == 4

    def test_stats_as_dict_embeds_funnel(self):
        stats = QueryStats(query="q")
        stats.funnel.candidates = 2
        assert stats.as_dict()["funnel"]["candidates"] == 2


@pytest.fixture(scope="module")
def engine(datasets):
    engine = ThreeDPro(EngineConfig(metrics=MetricsRegistry()))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


class TestEngineIntegration:
    @pytest.mark.parametrize(
        "spec",
        [
            QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
            QuerySpec(kind="within", source="nuclei_b", target="nuclei_a",
                      distance=1.0),
            QuerySpec(kind="nn", source="vessels", target="nuclei_a"),
            QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
        ],
        ids=lambda spec: spec.normalized().label,
    )
    def test_funnel_reconciles(self, engine, spec):
        result = engine.execute(spec)
        assert result.funnel is result.stats.funnel
        assert result.funnel.violations(result.stats, strict=True) == []

    def test_funnel_counters_emitted_once(self, datasets):
        registry = MetricsRegistry()
        engine = ThreeDPro(EngineConfig(metrics=registry))
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        result = engine.nn_join("nuclei_a", "vessels")
        pairs = registry.counter("repro_funnel_pairs_total")
        confirmed = sum(
            value for key, value in pairs.series().items()
            if ("stage", "confirmed") in key
        )
        assert confirmed == result.funnel.confirmed_total
        candidates = registry.counter("repro_funnel_candidates_total")
        assert sum(candidates.series().values()) == result.funnel.candidates

    def test_funnel_attached_to_root_span(self, datasets):
        engine = ThreeDPro(EngineConfig(metrics=MetricsRegistry(), tracing=True))
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        engine.nn_join("nuclei_a", "vessels")
        [root] = engine.tracer.roots
        assert "candidates=" in root.attrs["funnel"]
