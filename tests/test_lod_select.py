"""Tests for profiling-driven LOD selection (Sections 4.4 / 6.5)."""

import pytest

from repro.core import EngineConfig, ThreeDPro, choose_lod_list, profile_pruning
from repro.core.lod_select import LODProfile, measure_face_growth


@pytest.fixture(scope="module")
def engine(datasets):
    eng = ThreeDPro(EngineConfig(paradigm="fpr"))
    for dataset in datasets.values():
        eng.load_dataset(dataset)
    return eng


class TestProfile:
    def test_face_growth_near_two(self, datasets):
        # One LOD = two decimation rounds, each halving-ish the faces, so
        # the growth factor r should be around 2 (Fig. 11).
        growth = measure_face_growth(datasets["nuclei_a"])
        assert 1.3 < growth < 3.5

    def test_profile_intersection(self, engine):
        profile = profile_pruning(engine, "nuclei_a", "nuclei_b", "intersection", sample_size=10)
        assert profile.query == "intersection"
        assert profile.lods[-1] == max(profile.lods)
        total_evaluated = sum(profile.evaluated.values())
        assert total_evaluated > 0
        for lod in profile.lods:
            assert 0.0 <= profile.pruned_fraction(lod) <= 1.0

    def test_profile_within_requires_distance(self, engine):
        with pytest.raises(ValueError):
            profile_pruning(engine, "nuclei_a", "nuclei_b", "within")

    def test_profile_unknown_query(self, engine):
        with pytest.raises(ValueError):
            profile_pruning(engine, "nuclei_a", "nuclei_b", "containment")

    def test_profile_requires_full_fpr(self, datasets):
        engine = ThreeDPro(EngineConfig(paradigm="fr"))
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        with pytest.raises(ValueError):
            profile_pruning(engine, "nuclei_a", "nuclei_b", "intersection")

    def test_sample_dataset_cleaned_up(self, engine):
        profile_pruning(engine, "nuclei_a", "nuclei_b", "intersection", sample_size=5)
        assert not any(name.startswith("__sample") for name in engine.dataset_names)


class TestChooseLodList:
    def make_profile(self, fractions, growth=2.0):
        lods = tuple(range(len(fractions)))
        evaluated = {lod: 100 for lod in lods}
        pruned = {lod: int(100 * f) for lod, f in zip(lods, fractions)}
        return LODProfile("intersection", lods, evaluated, pruned, growth)

    def test_consecutive_rule_matches_paper(self):
        profile = self.make_profile([0.6, 0.1, 0.3, 0.05])
        # Paper's Section 4.4: threshold = 1/r^2 = 0.25 -> keep 0 and 2,
        # plus the top LOD 3.
        assert choose_lod_list(profile, rule="consecutive") == (0, 2, 3)

    def test_to_top_rule_keeps_cheap_early_lods(self):
        profile = self.make_profile([0.6, 0.1, 0.3, 0.05])
        # Cost-vs-top thresholds with r=2: lod0 1/64, lod1 1/16, lod2 1/4.
        # LOD1's 10% pruning clears 1/16, so the non-myopic rule keeps it.
        assert choose_lod_list(profile) == (0, 1, 2, 3)

    def test_top_lod_always_included(self):
        profile = self.make_profile([0.0, 0.0, 0.0])
        assert choose_lod_list(profile) == (2,)
        assert choose_lod_list(profile, rule="consecutive") == (2,)

    def test_custom_threshold(self):
        profile = self.make_profile([0.6, 0.1, 0.3, 0.05])
        assert choose_lod_list(profile, threshold=0.05) == (0, 1, 2, 3)
        assert choose_lod_list(profile, threshold=0.5) == (0, 3)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            choose_lod_list(self.make_profile([0.5, 0.5]), rule="greedy")

    def test_consecutive_break_even_scales_with_growth(self):
        gentle = self.make_profile([0.3, 0.0], growth=1.5)  # 1/2.25 ~ 0.44
        steep = self.make_profile([0.3, 0.0], growth=3.0)  # 1/9 ~ 0.11
        assert choose_lod_list(gentle, rule="consecutive") == (1,)
        assert choose_lod_list(steep, rule="consecutive") == (0, 1)

    def test_end_to_end_selection_improves_or_matches(self, engine, datasets):
        """A profiled LOD list must keep answers identical."""
        profile = profile_pruning(engine, "nuclei_a", "nuclei_b", "intersection", sample_size=10)
        lods = choose_lod_list(profile)
        tuned = ThreeDPro(EngineConfig(paradigm="fpr", lod_list=lods))
        for dataset in datasets.values():
            tuned.load_dataset(dataset)
        assert (
            tuned.intersection_join("nuclei_a", "nuclei_b").pairs
            == engine.intersection_join("nuclei_a", "nuclei_b").pairs
        )
