"""The sampling profiler: phase stack, reports, sampler, engine wiring."""

import pickle
import sys
import threading
import time

import pytest

from repro.core import EngineConfig, ThreeDPro
from repro.core.errors import EngineConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    ProfileReport,
    SamplingProfiler,
    current_phase,
    phase_scope,
    pop_phase,
    push_phase,
)


class TestPhaseStack:
    def test_push_pop_nesting(self):
        assert current_phase() is None
        push_phase("outer")
        assert current_phase() == "outer"
        push_phase("inner")
        assert current_phase() == "inner"
        pop_phase()
        assert current_phase() == "outer"
        pop_phase()
        assert current_phase() is None

    def test_pop_on_empty_stack_is_harmless(self):
        pop_phase()
        assert current_phase() is None

    def test_phase_scope_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with phase_scope("doomed"):
                assert current_phase() == "doomed"
                raise RuntimeError("boom")
        assert current_phase() is None

    def test_stacks_are_per_thread(self):
        seen = {}

        def worker():
            push_phase("worker-phase")
            seen["inner"] = current_phase()
            pop_phase()

        with phase_scope("main-phase"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert current_phase() == "main-phase"
        assert seen["inner"] == "worker-phase"


class TestProfileReport:
    def test_add_and_merge(self):
        a = ProfileReport()
        a.add("compute", ("f", "g"))
        a.add("compute", ("f", "g"), 2)
        b = ProfileReport()
        b.add("compute", ("f", "g"))
        b.add("decode", ("h",))
        a.merge(b)
        assert a.samples[("compute", ("f", "g"))] == 4
        assert a.samples[("decode", ("h",))] == 1
        assert a.total_samples == 5

    def test_phase_counts_and_shares(self):
        report = ProfileReport()
        report.add("compute", ("f",), 3)
        report.add("decode", ("g",), 1)
        assert report.phase_counts() == {"compute": 3, "decode": 1}
        assert report.phase_shares() == {"compute": 0.75, "decode": 0.25}
        assert ProfileReport().phase_shares() == {}

    def test_pickle_roundtrip(self):
        report = ProfileReport(interval_seconds=0.001)
        report.add("compute", ("mod.f", "mod.g"), 5)
        clone = pickle.loads(pickle.dumps(report))
        assert clone.samples == report.samples
        assert clone.interval_seconds == 0.001

    def test_collapsed_format(self):
        report = ProfileReport()
        report.add("compute", ("a.f", "b.g"), 2)
        report.add("decode", ("c.h",), 1)
        text = report.to_collapsed()
        assert "compute;a.f;b.g 2\n" in text
        assert "decode;c.h 1\n" in text
        # sorted for determinism
        assert text == "".join(sorted(text.splitlines(keepends=True)))

    def test_empty_collapsed_is_empty_string(self):
        assert ProfileReport().to_collapsed() == ""

    def test_top_self_ranks_by_leaf(self):
        report = ProfileReport()
        report.add("compute", ("a.f", "b.leaf"), 3)
        report.add("compute", ("c.g", "b.leaf"), 2)  # same leaf, other path
        report.add("decode", ("d.other",), 4)
        top = report.top_self(2)
        assert top[0] == ("b.leaf", "compute", 5)
        assert top[1] == ("d.other", "decode", 4)

    def test_format_table(self):
        report = ProfileReport()
        report.add("compute", ("a.f",), 1)
        table = report.format_table(5)
        assert "a.f" in table
        assert "100.0%" in table
        assert ProfileReport().format_table() == "no samples collected"


def _busy(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        sum(i * i for i in range(200))


class TestSamplingProfiler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_seconds=0)

    def test_samples_phased_work(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.start()
        try:
            with phase_scope("compute"):
                _busy(0.1)
        finally:
            profiler.stop()
        report = profiler.take()
        counts = report.phase_counts()
        assert counts.get("compute", 0) > 0
        assert set(counts) == {"compute"}

    def test_ignores_unphased_threads(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.start()
        try:
            _busy(0.05)  # no phase pushed
        finally:
            profiler.stop()
        assert profiler.take().total_samples == 0

    def test_nested_start_stop_keeps_sampler_alive(self):
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.start()
        profiler.start()
        profiler.stop()
        assert profiler.running
        profiler.stop()
        assert not profiler.running

    def test_take_swaps_report(self):
        profiler = SamplingProfiler()
        profiler.absorb(None)  # no-op
        shipped = ProfileReport()
        shipped.add("decode", ("x.f",), 2)
        profiler.absorb(shipped)
        first = profiler.take()
        assert first.total_samples == 2
        assert profiler.take().total_samples == 0

    def test_switch_interval_restored(self):
        before = sys.getswitchinterval()
        profiler = SamplingProfiler(interval_seconds=0.001)
        profiler.start()
        assert sys.getswitchinterval() <= 0.001
        profiler.stop()
        assert sys.getswitchinterval() == before


class TestEngineWiring:
    def test_profiling_off_by_default(self):
        engine = ThreeDPro(EngineConfig(metrics=MetricsRegistry()))
        assert engine.profiler is None
        assert engine.take_profile() is None

    def test_config_validates_interval(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(profile_interval_ms=0)

    def test_profiled_query_buckets_by_phase(self, datasets):
        engine = ThreeDPro(
            EngineConfig(
                metrics=MetricsRegistry(), profiling=True, profile_interval_ms=0.5
            )
        )
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        for _ in range(3):
            engine.within_join("nuclei_a", "nuclei_b", 1.0)
        assert not engine.profiler.running  # stopped between queries
        report = engine.take_profile()
        counts = report.phase_counts()
        assert report.total_samples > 0
        known = {"filter", "decode", "compute", "other"}
        assert set(counts) <= known
        assert report.to_collapsed()  # non-empty export

    def test_profile_ships_from_process_workers(self, datasets):
        engine = ThreeDPro(
            EngineConfig(
                metrics=MetricsRegistry(),
                profiling=True,
                profile_interval_ms=0.5,
                query_workers=2,
                query_backend="process",
            )
        )
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        for _ in range(2):
            engine.within_join("nuclei_a", "nuclei_b", 1.0)
        report = engine.take_profile()
        # Parent plus shipped worker samples land in one report; the
        # scene is small, so only assert the plumbing produced samples.
        assert report.total_samples > 0
