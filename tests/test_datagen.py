"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datagen import (
    make_nucleus,
    make_vessel,
    nuclei_dataset,
    paired_nuclei_datasets,
    vessel_dataset,
)
from repro.datagen.rng import random_rotation, random_unit_vectors
from repro.datagen.vessels import VesselSpec, merge_polyhedra
from repro.geometry import box_mindist
from repro.mesh import mesh_volume, tetrahedron, validate_polyhedron

SMALL = VesselSpec(bifurcations=2, points_per_branch=4, segments=6)


class TestRngHelpers:
    def test_unit_vectors(self):
        v = random_unit_vectors(np.random.default_rng(0), 50)
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0)

    def test_rotation_is_orthonormal(self):
        r = random_rotation(np.random.default_rng(1))
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)


class TestNuclei:
    def test_nucleus_valid_and_positive_volume(self):
        for seed in range(5):
            mesh = make_nucleus(np.random.default_rng(seed), subdivisions=1)
            validate_polyhedron(mesh)
            assert mesh_volume(mesh) > 0

    def test_face_count_follows_subdivisions(self):
        rng = np.random.default_rng(0)
        assert make_nucleus(rng, subdivisions=1).num_faces == 80
        assert make_nucleus(rng, subdivisions=2).num_faces == 320

    def test_dataset_objects_never_intersect(self):
        meshes = nuclei_dataset(30, seed=2, region_high=(60, 60, 60))
        boxes = [m.aabb for m in meshes]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                assert box_mindist(boxes[i], boxes[j]) > 0.0

    def test_dataset_deterministic(self):
        a = nuclei_dataset(8, seed=5, region_high=(40, 40, 40))
        b = nuclei_dataset(8, seed=5, region_high=(40, 40, 40))
        for ma, mb in zip(a, b):
            assert np.array_equal(ma.vertices, mb.vertices)

    def test_overfull_region_rejected(self):
        with pytest.raises(ValueError):
            nuclei_dataset(10_000, seed=0, region_high=(10, 10, 10))

    def test_paired_counterparts_nearby(self):
        a, b = paired_nuclei_datasets(12, seed=3, region_high=(50, 50, 50))
        assert len(a) == len(b) == 12
        for ma, mb in zip(a, b):
            gap = np.linalg.norm(
                np.asarray(ma.aabb.center) - np.asarray(mb.aabb.center)
            )
            assert gap < 3.0  # displaced, not teleported

    def test_compact_placement_denser_than_scattered(self):
        compact = nuclei_dataset(20, seed=1, region_high=(200, 200, 200), compact=True)
        scattered = nuclei_dataset(20, seed=1, region_high=(200, 200, 200), compact=False)

        def spread(meshes):
            centers = np.array([m.aabb.center for m in meshes])
            return np.linalg.norm(centers.max(axis=0) - centers.min(axis=0))

        assert spread(compact) < spread(scattered)


class TestVessels:
    def test_vessel_valid(self):
        mesh = make_vessel(np.random.default_rng(4), spec=SMALL)
        validate_polyhedron(mesh)
        assert mesh_volume(mesh) > 0

    def test_branch_count(self):
        # bifurcations=2 -> depths 0,1,2 -> 1 + 2 + 4 = 7 tubes.
        mesh = make_vessel(np.random.default_rng(5), spec=SMALL)
        per_tube = (SMALL.points_per_branch * SMALL.segments * 2) + 2 * SMALL.segments
        assert mesh.num_faces == 7 * per_tube

    def test_vessel_dataset_spacing(self):
        vessels = vessel_dataset(2, seed=6, region_high=(150, 150, 150), spec=SMALL)
        assert len(vessels) == 2
        assert box_mindist(vessels[0].aabb, vessels[1].aabb) > 0.0

    def test_region_too_small_rejected(self):
        with pytest.raises(ValueError):
            vessel_dataset(50, seed=0, region_high=(50, 50, 50), spec=SMALL)

    def test_merge_requires_input(self):
        with pytest.raises(ValueError):
            merge_polyhedra([])

    def test_merge_offsets_indices(self):
        merged = merge_polyhedra([tetrahedron(), tetrahedron(center=(5, 0, 0))])
        assert merged.num_vertices == 8
        assert merged.num_faces == 8
        validate_polyhedron(merged)
