"""Tests for scalar triangle utilities."""

import numpy as np
import pytest

from repro.geometry import triangle_area, triangle_centroid, triangle_normal
from repro.geometry.triangle import is_degenerate_triangle, triangle_unit_normal

XY = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)


class TestNormals:
    def test_ccw_normal_points_up(self):
        normal = triangle_normal(XY)
        assert normal[2] > 0
        assert np.allclose(normal, [0, 0, 1])

    def test_unit_normal(self):
        big = XY * 10.0
        assert np.allclose(triangle_unit_normal(big), [0, 0, 1])

    def test_flipped_winding_flips_normal(self):
        flipped = XY[::-1].copy()
        assert np.allclose(triangle_normal(flipped), [0, 0, -1])

    def test_degenerate_has_no_unit_normal(self):
        line = np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0]], dtype=float)
        with pytest.raises(ValueError):
            triangle_unit_normal(line)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            triangle_normal(np.zeros((4, 3)))


class TestMeasures:
    def test_area(self):
        assert triangle_area(XY) == pytest.approx(0.5)
        assert triangle_area(XY * 2) == pytest.approx(2.0)

    def test_centroid(self):
        assert np.allclose(triangle_centroid(XY), [1 / 3, 1 / 3, 0])

    def test_degeneracy_detection(self):
        assert is_degenerate_triangle(
            np.array([[0, 0, 0], [1, 1, 1], [2, 2, 2]], dtype=float)
        )
        assert not is_degenerate_triangle(XY)

    def test_magnitude_is_twice_area(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            tri = rng.normal(size=(3, 3))
            assert np.linalg.norm(triangle_normal(tri)) == pytest.approx(
                2 * triangle_area(tri)
            )
