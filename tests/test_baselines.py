"""Tests for the naive ground-truth engine and the PostGIS-like comparator."""

import pytest

from repro.baselines import NaiveEngine, PostGISLikeEngine
from repro.core import QueryResult
from repro.mesh import box_mesh, icosphere


@pytest.fixture(scope="module")
def spheres():
    targets = [icosphere(1, center=(0, 0, 0)), icosphere(1, center=(10, 0, 0))]
    sources = [
        icosphere(1, center=(1.2, 0, 0)),  # overlaps target 0
        icosphere(1, center=(4, 0, 0)),  # near nothing
        icosphere(1, center=(10.5, 0.5, 0)),  # overlaps target 1
    ]
    return targets, sources


class TestNaive:
    def test_intersection(self, spheres):
        targets, sources = spheres
        assert NaiveEngine(targets, sources).intersection_join().pairs == {0: [0], 1: [2]}

    def test_prefilter_does_not_change_answers(self, spheres):
        targets, sources = spheres
        plain = NaiveEngine(targets, sources)
        filtered = NaiveEngine(targets, sources, prefilter=True)
        assert plain.intersection_join().pairs == filtered.intersection_join().pairs
        assert plain.within_join(2.0).pairs == filtered.within_join(2.0).pairs
        assert plain.nn_join().pairs == filtered.nn_join().pairs
        assert plain.knn_join(2).pairs == filtered.knn_join(2).pairs

    def test_within(self, spheres):
        targets, sources = spheres
        result = NaiveEngine(targets, sources).within_join(2.1)
        assert result.pairs == {0: [0, 1], 1: [2]}

    def test_nn(self, spheres):
        targets, sources = spheres
        result = NaiveEngine(targets, sources).nn_join()
        assert result.pairs[0][0] == 0
        assert result.pairs[1][0] == 2
        assert result.pairs[0][1] == pytest.approx(0.0)

    def test_containment_counts_as_intersection(self):
        big = icosphere(2, radius=5.0)
        small = icosphere(1, radius=0.5)
        assert NaiveEngine([big], [small]).intersection_join().pairs == {0: [0]}
        assert NaiveEngine([small], [big]).intersection_join().pairs == {0: [0]}

    def test_knn_ordering(self, spheres):
        targets, sources = spheres
        result = NaiveEngine(targets, sources).knn_join(3)
        dists = [d for _sid, d in result.pairs[0]]
        assert dists == sorted(dists)


class TestPostGISLike:
    def test_matches_naive_intersection(self, spheres):
        targets, sources = spheres
        pairs, stats = PostGISLikeEngine(targets, sources).intersection_join()
        assert pairs == NaiveEngine(targets, sources).intersection_join().pairs
        assert stats.targets == len(targets)
        assert stats.total_seconds > 0

    def test_matches_naive_within(self, spheres):
        targets, sources = spheres
        pairs, _stats = PostGISLikeEngine(targets, sources).within_join(2.1)
        assert pairs == NaiveEngine(targets, sources).within_join(2.1).pairs

    def test_matches_naive_nn_with_buffer(self, spheres):
        targets, sources = spheres
        truth = NaiveEngine(targets, sources).nn_join().pairs
        buffer_distance = max(d for _sid, d in truth.values()) + 0.1
        pairs, _stats = PostGISLikeEngine(targets, sources).nn_join(buffer_distance)
        assert {tid: sid for tid, (sid, _d) in pairs.items()} == {
            tid: sid for tid, (sid, _d) in truth.items()
        }

    def test_nn_falls_back_to_scan_when_buffer_too_small(self, spheres):
        targets, sources = spheres
        truth = NaiveEngine(targets, sources).nn_join().pairs
        pairs, _stats = PostGISLikeEngine(targets, sources).nn_join(0.0)
        # With a zero buffer the probe box may match nothing; the engine
        # must fall back to scanning and still produce correct answers
        # for targets whose NN does not touch their MBB.
        assert pairs[1][0] == truth[1][0]

    def test_filter_reduces_candidates(self):
        targets = [box_mesh((0, 0, 0), (1, 1, 1))]
        sources = [
            box_mesh((i * 10.0, 0, 0), (i * 10.0 + 1, 1, 1)) for i in range(10)
        ]
        _pairs, stats = PostGISLikeEngine(targets, sources).intersection_join()
        assert stats.candidates < len(sources)


class TestResultShapeAlignment:
    """Both baselines return the engine's QueryResult shape."""

    def test_naive_returns_query_result(self, spheres):
        targets, sources = spheres
        result = NaiveEngine(targets, sources).intersection_join()
        assert isinstance(result, QueryResult)
        assert result.stats.config_label == "naive"
        assert result.stats.query == "intersection_join"
        assert result.stats.targets == len(targets)
        assert result.stats.results == result.total_matches
        assert result.stats.total_seconds > 0

    def test_postgis_returns_query_result(self, spheres):
        targets, sources = spheres
        result = PostGISLikeEngine(targets, sources).intersection_join()
        assert isinstance(result, QueryResult)
        assert result.stats.config_label == "PostGIS-like"
        # Legacy tuple unpacking keeps working through __iter__.
        pairs, stats = result
        assert pairs is result.pairs and stats is result.stats

    def test_knn_labels_match_engine(self, spheres):
        targets, sources = spheres
        naive = NaiveEngine(targets, sources)
        assert naive.knn_join(1).stats.query == "nn_join"
        assert naive.knn_join(2).stats.query == "knn_join(k=2)"
