"""Edge cases of the metrics exposition: escaping, buckets, handles.

The happy-path registry behavior lives in test_obs.py; this file pins
the corners scrapers actually trip on — label values containing quotes,
backslashes, and newlines; the ``+Inf`` bucket; empty registries;
concurrent observation; and the OpenMetrics dialect (TYPE-before-HELP
ordering, counter ``_total`` suffix handling, the ``# EOF`` terminator).
"""

import pickle
import threading

import pytest

from repro.obs.metrics import (
    CounterHandle,
    HistogramHandle,
    MetricsRegistry,
    diff_states,
)


class TestLabelEscaping:
    def test_quote_backslash_newline_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("weird_total", "odd labels")
        counter.inc(1, path='C:\\data\\"x"\nnext')
        text = registry.to_prometheus()
        assert 'path="C:\\\\data\\\\\\"x\\"\\nnext"' in text
        # the raw newline must never reach the exposition body
        for line in text.splitlines():
            assert "\n" not in line

    def test_escaped_export_is_line_parseable(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").inc(2, k='a"b\\c\nd')
        lines = [
            line for line in registry.to_prometheus().splitlines()
            if line and not line.startswith("#")
        ]
        # one sample per line, value parseable after the closing brace
        for line in lines:
            value = line.rsplit(" ", 1)[1]
            float(value)

    def test_label_sets_sorted_deterministically(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "h")
        counter.inc(1, zebra="z", alpha="a")
        counter.inc(1, alpha="a", zebra="z")
        text = registry.to_prometheus()
        assert text.count('c_total{alpha="a",zebra="z"} 2') == 1


class TestHistogramEdges:
    def test_inf_bucket_catches_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        hist.observe(50.0)  # above every finite bucket
        text = registry.to_prometheus()
        assert 'h_seconds_bucket{le="0.1"} 0' in text
        assert 'h_seconds_bucket{le="1"} 0' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_boundary_value_is_inclusive(self):
        # Prometheus `le` is <=: a value equal to a bound lands in it.
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.bucket_counts()[0.1] == 1

    def test_buckets_must_be_distinct_and_nonempty(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a_seconds", "h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b_seconds", "h", buckets=(1.0, 1.0))

    def test_concurrent_observe_loses_nothing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(0.5,))
        handle = hist.handle(kind="x")
        per_thread, threads = 2_000, 8

        def hammer():
            for i in range(per_thread):
                hist.observe(0.1)
                handle.observe(1.0)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert hist.count() == per_thread * threads
        assert hist.count(kind="x") == per_thread * threads
        assert hist.bucket_counts(kind="x")[0.5] == 0  # all went to +Inf


class TestEmptyRegistry:
    def test_prometheus_export(self):
        assert MetricsRegistry().to_prometheus() == "\n"

    def test_openmetrics_export_is_just_eof(self):
        assert MetricsRegistry().to_openmetrics() == "# EOF\n"

    def test_to_dict_empty(self):
        assert MetricsRegistry().to_dict() == {}

    def test_diff_of_empty_states(self):
        registry = MetricsRegistry()
        assert diff_states(registry.export_state(), registry.export_state()) == {}


class TestOpenMetrics:
    def test_type_precedes_help(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "the help")
        lines = registry.to_openmetrics().splitlines()
        assert lines.index("# TYPE c counter") < lines.index("# HELP c the help")

    def test_counter_family_drops_total_sample_keeps_it(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "h").inc(3)
        text = registry.to_openmetrics()
        assert "# TYPE requests counter" in text
        assert "requests_total 3" in text
        assert "# TYPE requests_total" not in text

    def test_counter_without_total_suffix_gains_it_on_samples(self):
        registry = MetricsRegistry()
        registry.counter("evicted_bytes", "h").inc(7)
        text = registry.to_openmetrics()
        assert "# TYPE evicted_bytes counter" in text
        assert "evicted_bytes_total 7" in text

    def test_ends_with_eof(self):
        registry = MetricsRegistry()
        registry.gauge("g", "h").set(1)
        assert registry.to_openmetrics().endswith("# EOF\n")

    def test_histogram_rendered_same_as_prometheus(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
        om = registry.to_openmetrics()
        assert 'h_seconds_bucket{le="1"} 1' in om
        assert 'h_seconds_bucket{le="+Inf"} 1' in om


class TestHandles:
    def test_counter_handle_shares_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "h")
        handle = counter.handle(kind="a")
        assert isinstance(handle, CounterHandle)
        handle.inc()
        handle.inc(2.5)
        counter.inc(1, kind="a")
        assert counter.value(kind="a") == 4.5

    def test_counter_handle_registers_series_eagerly(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").handle(kind="a")
        assert 'c_total{kind="a"} 0' in registry.to_prometheus()

    def test_histogram_handle_matches_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        handle = hist.handle()
        assert isinstance(handle, HistogramHandle)
        handle.observe(0.05)
        hist.observe(0.05)
        assert hist.count() == 2
        assert hist.bucket_counts()[0.1] == 2

    def test_handle_survives_merge_state(self):
        # merge_state mutates series in place; a pre-resolved handle
        # must keep writing to the live series afterwards.
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(1.0,))
        handle = hist.handle()
        handle.observe(0.5)
        other = MetricsRegistry()
        other.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
        registry.merge_state(other.export_state())
        handle.observe(0.5)
        assert hist.count() == 3

    def test_export_state_roundtrips_pickle(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").handle(kind="a").inc()
        registry.histogram("h_seconds", "h").handle(kind="a").observe(0.2)
        state = pickle.loads(pickle.dumps(registry.export_state()))
        fresh = MetricsRegistry()
        fresh.merge_state(state)
        assert fresh.counter("c_total").value(kind="a") == 1
        assert fresh.histogram("h_seconds").count(kind="a") == 1
