"""Tests for point/segment/triangle distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    point_triangle_distance,
    segment_segment_distance,
    tri_tri_distance,
    tri_tri_distance_batch,
    tri_tri_intersect,
)
from repro.geometry.distance import (
    closest_point_on_triangle_batch,
    point_triangle_distance_batch,
    segment_segment_distance_batch,
)

XY = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)


class TestPointTriangle:
    def test_point_above_interior(self):
        assert point_triangle_distance((0.2, 0.2, 3.0), XY) == pytest.approx(3.0)

    def test_point_on_triangle(self):
        assert point_triangle_distance((0.2, 0.2, 0.0), XY) == pytest.approx(0.0)

    def test_point_at_vertex_region(self):
        assert point_triangle_distance((-1.0, -1.0, 0.0), XY) == pytest.approx(np.sqrt(2))

    def test_point_in_edge_region(self):
        # Beyond edge AB (y < 0), closest point is the projection on AB.
        assert point_triangle_distance((0.5, -2.0, 0.0), XY) == pytest.approx(2.0)

    def test_point_beyond_hypotenuse(self):
        d = point_triangle_distance((1.0, 1.0, 0.0), XY)
        assert d == pytest.approx(np.sqrt(2) / 2)

    def test_closest_point_lies_on_triangle_plane(self):
        pts = np.array([[0.2, 0.2, 5.0], [-3, -3, 1], [2, 2, -4.0]])
        tris = np.broadcast_to(XY, (3, 3, 3))
        closest = closest_point_on_triangle_batch(pts, tris)
        assert np.allclose(closest[:, 2], 0.0)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_matches_dense_sampling(self, seed):
        rng = np.random.default_rng(seed)
        tri = rng.uniform(-1, 1, size=(3, 3))
        p = rng.uniform(-2, 2, size=3)
        d = point_triangle_distance(p, tri)
        # Dense barycentric sampling can only find distances >= true d.
        grid = []
        n = 24
        for i in range(n + 1):
            for j in range(n + 1 - i):
                u, v = i / n, j / n
                grid.append((1 - u - v, u, v))
        samples = np.asarray(grid) @ tri
        sampled = np.linalg.norm(samples - p, axis=1).min()
        assert d <= sampled + 1e-9
        assert sampled - d <= 0.2  # sampling resolution bound


class TestSegmentSegment:
    def test_parallel_segments(self):
        d = segment_segment_distance((0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0))
        assert d == pytest.approx(1.0)

    def test_crossing_segments(self):
        d = segment_segment_distance((0, 0, 0), (1, 1, 0), (0, 1, 0), (1, 0, 0))
        assert d == pytest.approx(0.0, abs=1e-12)

    def test_skew_segments(self):
        d = segment_segment_distance((0, 0, 0), (1, 0, 0), (0.5, -1, 2), (0.5, 1, 2))
        assert d == pytest.approx(2.0)

    def test_endpoint_to_endpoint(self):
        d = segment_segment_distance((0, 0, 0), (1, 0, 0), (3, 0, 0), (4, 0, 0))
        assert d == pytest.approx(2.0)

    def test_degenerate_segment_is_point(self):
        d = segment_segment_distance((0, 0, 0), (0, 0, 0), (1, 0, 0), (1, 1, 0))
        assert d == pytest.approx(1.0)

    def test_both_degenerate(self):
        d = segment_segment_distance((0, 0, 0), (0, 0, 0), (3, 4, 0), (3, 4, 0))
        assert d == pytest.approx(5.0)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_never_exceeds_sampled_minimum(self, seed):
        rng = np.random.default_rng(seed)
        p1, q1, p2, q2 = rng.uniform(-1, 1, size=(4, 3))
        d = segment_segment_distance(p1, q1, p2, q2)
        t = np.linspace(0, 1, 64)
        s1 = p1[None] * (1 - t)[:, None] + q1[None] * t[:, None]
        s2 = p2[None] * (1 - t)[:, None] + q2[None] * t[:, None]
        sampled = np.sqrt(((s1[:, None] - s2[None, :]) ** 2).sum(-1)).min()
        assert d <= sampled + 1e-9


class TestTriTriDistance:
    def test_parallel_triangles(self):
        other = XY + np.array([0, 0, 2.5])
        assert tri_tri_distance(XY, other) == pytest.approx(2.5)

    def test_intersecting_triangles_zero(self):
        other = np.array([[0.2, 0.2, -1], [0.2, 0.2, 1], [0.4, 0.5, 1]], dtype=float)
        assert tri_tri_distance(XY, other) == pytest.approx(0.0)

    def test_vertex_closest_feature(self):
        other = np.array([[2, 0, 0], [3, 0, 0], [2, 1, 0]], dtype=float)
        assert tri_tri_distance(XY, other) == pytest.approx(1.0)

    def test_edge_edge_closest_feature(self):
        # Two skew triangles whose closest features are edge interiors.
        a = np.array([[0, -1, 0], [0, 1, 0], [-2, 0, 0]], dtype=float)
        b = np.array([[1, 0, -1], [1, 0, 1], [3, 0, 0]], dtype=float)
        assert tri_tri_distance(a, b) == pytest.approx(1.0)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, size=(32, 3, 3))
        b = rng.uniform(-1, 1, size=(32, 3, 3)) + np.array([3.0, 0, 0])
        batch = tri_tri_distance_batch(a, b)
        for i in range(32):
            assert batch[i] == pytest.approx(tri_tri_distance(a[i], b[i]))

    def test_empty_batch(self):
        empty = np.zeros((0, 3, 3))
        assert tri_tri_distance_batch(empty, empty).shape == (0,)

    @settings(max_examples=150, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_lower_bounds_sampled_distance(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, size=(3, 3))
        b = rng.uniform(-1, 1, size=(3, 3)) + rng.uniform(0, 3, size=3)
        d = tri_tri_distance(a, b)
        grid = []
        n = 10
        for i in range(n + 1):
            for j in range(n + 1 - i):
                u, v = i / n, j / n
                grid.append((1 - u - v, u, v))
        w = np.asarray(grid)
        pa, pb = w @ a, w @ b
        sampled = np.sqrt(((pa[:, None] - pb[None, :]) ** 2).sum(-1)).min()
        assert d <= sampled + 1e-9
        if not tri_tri_intersect(a, b):
            # For disjoint pairs the feature minimum is exact; dense
            # sampling should get close to it.
            assert sampled - d <= 0.5
