"""Tests for the geometry computer and task scheduling."""

import math

import numpy as np
import pytest

from repro.geometry import tri_tri_distance_batch
from repro.index import TriangleAABBTree
from repro.mesh import icosphere
from repro.parallel import Device, GeometryComputer, TaskScheduler, iter_pair_blocks


def brute_distance(tris_a, tris_b):
    ii, jj = np.meshgrid(np.arange(len(tris_a)), np.arange(len(tris_b)), indexing="ij")
    return float(
        tri_tri_distance_batch(
            tris_a[ii.ravel()], tris_b[jj.ravel()], check_intersection=False
        ).min()
    )


class TestPairBlocks:
    def test_covers_all_pairs_exactly_once(self):
        seen = set()
        for ii, jj in iter_pair_blocks(7, 5, 8):
            seen.update(zip(ii.tolist(), jj.tolist()))
        assert seen == {(i, j) for i in range(7) for j in range(5)}

    def test_block_sizes(self):
        blocks = list(iter_pair_blocks(4, 4, 6))
        assert [len(ii) for ii, _ in blocks] == [6, 6, 4]

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            list(iter_pair_blocks(2, 2, 0))


class TestScheduler:
    def test_inline_map(self):
        assert TaskScheduler(1).map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_threaded_map_same_results(self):
        items = list(range(50))
        inline = TaskScheduler(1).map(lambda x: x * x, items)
        threaded = TaskScheduler(4).map(lambda x: x * x, items)
        assert inline == threaded

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            TaskScheduler(0)


class TestGeometryComputer:
    @pytest.fixture(scope="class")
    def spheres(self):
        a = icosphere(2, center=(0, 0, 0)).triangles
        b = icosphere(2, center=(3, 0.5, -0.2)).triangles
        return a, b

    def test_cpu_and_gpu_agree_on_intersection(self, spheres):
        a, b = spheres
        touching = icosphere(2, center=(1.5, 0, 0)).triangles
        for other, expected in ((b, False), (touching, True)):
            cpu = GeometryComputer(Device.CPU).intersects(a, other)
            gpu = GeometryComputer(Device.GPU).intersects(a, other)
            assert cpu == gpu == expected

    def test_cpu_and_gpu_agree_on_distance(self, spheres):
        a, b = spheres
        expected = brute_distance(a, b)
        assert GeometryComputer(Device.CPU).min_distance(a, b) == pytest.approx(expected)
        assert GeometryComputer(Device.GPU).min_distance(a, b) == pytest.approx(expected)

    def test_tree_path_agrees(self, spheres):
        a, b = spheres
        computer = GeometryComputer(Device.CPU)
        tree_a, tree_b = TriangleAABBTree(a), TriangleAABBTree(b)
        assert computer.min_distance(
            a, b, tree_a=tree_a, tree_b=tree_b
        ) == pytest.approx(brute_distance(a, b))
        assert computer.intersects(a, b, tree_a=tree_a, tree_b=tree_b) is False

    def test_stop_below_early_exit_counts_fewer_pairs(self, spheres):
        a, b = spheres
        computer = GeometryComputer(Device.CPU, cpu_block=64)
        full_stats, early_stats = {}, {}
        computer.min_distance(a, b, stats=full_stats)
        computer.min_distance(a, b, stop_below=100.0, stats=early_stats)
        assert early_stats["pairs"] < full_stats["pairs"]

    def test_gpu_uses_fewer_kernel_launches_than_cpu(self, spheres):
        # The GPU device batches at the kernel-saturating size; far fewer
        # launches than the CPU's small fixed tasks over the same pairs.
        a, b = spheres
        gpu = GeometryComputer(Device.GPU)
        cpu = GeometryComputer(Device.CPU)
        gpu_blocks = list(iter_pair_blocks(len(a), len(b), gpu.block_size))
        cpu_blocks = list(iter_pair_blocks(len(a), len(b), cpu.block_size))
        assert len(gpu_blocks) * 8 <= len(cpu_blocks)

    def test_pairwise_min_distances_matches_loop(self, spheres):
        a, b = spheres
        c = icosphere(1, center=(-4, 0, 0)).triangles
        jobs = [(a, b), (a, c), (b, c)]
        expected = [brute_distance(x, y) for x, y in jobs]
        for device in (Device.CPU, Device.GPU):
            got = GeometryComputer(device).pairwise_min_distances(jobs)
            assert got == pytest.approx(expected)

    def test_pairwise_empty_jobs(self):
        assert GeometryComputer(Device.GPU).pairwise_min_distances([]) == []

    def test_fused_batch_splits_large_jobs(self):
        # Jobs larger than the gpu block must still be exact.
        a = icosphere(2).triangles
        b = icosphere(2, center=(2.7, 0, 0)).triangles
        small_block = GeometryComputer(Device.GPU, gpu_block=1000)
        expected = brute_distance(a, b)
        assert small_block.pairwise_min_distances([(a, b)])[0] == pytest.approx(expected)
        assert small_block.min_distance(a, b) == pytest.approx(expected)


class TestSharedStatsAccounting:
    """The kernel "pairs" counter must be exact under scheduler threads.

    The old per-block ``stats[k] = stats.get(k, 0) + n`` read-modify-write
    on the caller-shared dict lost updates when ``pairwise_min_distances``
    fanned jobs across workers; counts are now accumulated per job and
    merged once, serially.
    """

    @pytest.fixture(scope="class")
    def disjoint_jobs(self):
        # Well-separated sphere pairs: every distance is > 0, so the
        # stop_below=0.0 early exit never fires and the exact pair count
        # is the full cross product per job.
        jobs = []
        expected = 0
        for i in range(64):
            a = icosphere(0, center=(i * 10.0, 0.0, 0.0)).triangles
            b = icosphere(0, center=(i * 10.0 + 5.0, 0.0, 0.0)).triangles
            jobs.append((a, b))
            expected += len(a) * len(b)
        return jobs, expected

    def test_pairwise_stats_exact_with_threads(self, disjoint_jobs):
        jobs, expected = disjoint_jobs
        computer = GeometryComputer(
            Device.CPU, cpu_block=16, scheduler=TaskScheduler(4)
        )
        for _ in range(5):  # hammer: one lost update fails the run
            stats: dict = {}
            computer.pairwise_min_distances(jobs, stats=stats)
            assert stats["pairs"] == expected

    def test_pairwise_stats_exact_serial(self, disjoint_jobs):
        jobs, expected = disjoint_jobs
        stats: dict = {}
        GeometryComputer(Device.CPU).pairwise_min_distances(jobs, stats=stats)
        assert stats["pairs"] == expected

    def test_intersects_merges_once_on_hit(self):
        a = icosphere(1).triangles
        stats: dict = {}
        computer = GeometryComputer(Device.CPU, cpu_block=8)
        assert computer.intersects(a, a, stats=stats)
        # early exit still reports the pairs actually evaluated
        assert 0 < stats["pairs"] <= len(a) * len(a)
