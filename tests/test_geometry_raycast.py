"""Tests for ray casting and point-in-polyhedron classification."""

import numpy as np
import pytest

from repro.geometry import point_in_polyhedron, ray_triangle_intersect
from repro.geometry.raycast import ray_triangles_hits
from repro.mesh import box_mesh, icosphere

XY = np.array([[0, 0, 0], [2, 0, 0], [0, 2, 0]], dtype=float)


class TestRayTriangle:
    def test_direct_hit(self):
        t = ray_triangle_intersect((0.3, 0.3, -5.0), (0, 0, 1.0), XY)
        assert t == pytest.approx(5.0)

    def test_miss_outside(self):
        assert ray_triangle_intersect((5, 5, -5), (0, 0, 1.0), XY) is None

    def test_behind_origin(self):
        assert ray_triangle_intersect((0.3, 0.3, 5.0), (0, 0, 1.0), XY) is None

    def test_parallel_ray(self):
        assert ray_triangle_intersect((0.3, 0.3, 1.0), (1, 0, 0), XY) is None

    def test_batch_hit_count(self):
        tris = np.stack([XY, XY + np.array([0, 0, 1.0]), XY + np.array([0, 0, 2.0])])
        count, reliable = ray_triangles_hits(
            np.array([0.3, 0.3, -1.0]), np.array([0.0, 0.0, 1.0]), tris
        )
        assert count == 3
        assert reliable


class TestPointInPolyhedron:
    def test_box_inside(self):
        mesh = box_mesh((0, 0, 0), (1, 1, 1))
        assert point_in_polyhedron((0.5, 0.5, 0.5), mesh.triangles)

    def test_box_outside(self):
        mesh = box_mesh((0, 0, 0), (1, 1, 1))
        assert not point_in_polyhedron((1.5, 0.5, 0.5), mesh.triangles)

    def test_box_outside_near_face(self):
        mesh = box_mesh((0, 0, 0), (1, 1, 1))
        assert not point_in_polyhedron((0.5, 0.5, 1.0 + 1e-6), mesh.triangles)

    def test_sphere_classification_grid(self):
        mesh = icosphere(subdivisions=2, radius=1.0)
        tris = mesh.triangles
        rng = np.random.default_rng(5)
        pts = rng.uniform(-1.5, 1.5, size=(100, 3))
        radius = np.linalg.norm(pts, axis=1)
        # The icosphere is inscribed: stay away from the shell where the
        # faceted surface and the analytic sphere disagree.
        for p, r in zip(pts, radius):
            if r < 0.9:
                assert point_in_polyhedron(p, tris), p
            elif r > 1.01:
                assert not point_in_polyhedron(p, tris), p

    def test_point_aligned_with_vertex_is_still_classified(self):
        # Casting through a vertex is the classic unreliable case; the
        # retry logic must still produce the correct answer.
        mesh = box_mesh((-1, -1, -1), (1, 1, 1))
        assert point_in_polyhedron((0.0, 0.0, 0.0), mesh.triangles)
