"""Tests for the observability layer: tracing, metrics, structured logs.

Unit tests cover the span tree (nesting, exception exits, the no-op
fast path), the metrics registry (counters/gauges/histograms and the
Prometheus text format), and the JSON event log. Integration tests run
real joins with ``EngineConfig(tracing=True)`` and assert the acceptance
property: the trace's phase totals match ``QueryStats`` within rounding.
"""

import io
import json
import logging
import sys

import pytest

from repro.core import EngineConfig, QueryStats, ThreeDPro
from repro.obs.logs import JsonFormatter, configure_json_logging, get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    DISABLED_TRACER,
    NOOP_SPAN,
    TimedPhase,
    Tracer,
    phase_totals,
)
from repro.storage.cache import DecodeCache


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", kind="nn") as root:
            with tracer.span("filter"):
                pass
            with tracer.span("compute") as compute:
                with tracer.span("refine", lod=0):
                    pass
                with tracer.span("refine", lod=2):
                    pass
        assert len(tracer.roots) == 1
        assert tracer.roots[0] is root
        assert [c.name for c in root.children] == ["filter", "compute"]
        assert [c.attrs["lod"] for c in compute.children] == [0, 2]
        for span in tracer.walk():
            assert span.wall_seconds is not None
            assert span.wall_seconds >= 0.0
            assert span.cpu_seconds is not None

    def test_exception_exit_closes_span_and_records_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("query") as root:
                with tracer.span("compute"):
                    raise RuntimeError("boom")
        assert root.wall_seconds is not None
        assert len(tracer.roots) == 1
        compute = root.children[0]
        assert compute.attrs["error"] == "RuntimeError: boom"
        assert root.attrs["error"] == "RuntimeError: boom"
        # the stack unwound fully: a new span becomes a fresh root
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["query", "after"]

    def test_disabled_tracer_hands_out_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", lod=3)
        assert span is NOOP_SPAN
        assert tracer.span("other") is NOOP_SPAN
        with span as inner:
            inner.set(foo=1)
        assert span.wall_seconds is None
        assert tracer.roots == []
        assert DISABLED_TRACER.span("x") is NOOP_SPAN

    def test_record_attaches_premeasured_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("compute") as compute:
            tracer.record("decode", 0.125, dataset="a", object=7, lod=2)
        assert len(compute.children) == 1
        decode = compute.children[0]
        assert decode.wall_seconds == 0.125
        assert decode.attrs == {"dataset": "a", "object": 7, "lod": 2}
        # disabled: record is a no-op
        off = Tracer(enabled=False)
        off.record("decode", 1.0)
        assert off.roots == []

    def test_set_updates_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("refine", lod=1) as span:
            span.set(settled=4)
        assert span.attrs == {"lod": 1, "settled": 4}

    def test_clear_drops_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots == []

    def test_to_dict_and_json_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", kind="nn"):
            with tracer.span("filter"):
                pass
        payload = json.loads(tracer.to_json())
        assert payload["enabled"] is True
        (root,) = payload["spans"]
        assert root["name"] == "query"
        assert root["attrs"] == {"kind": "nn"}
        assert [c["name"] for c in root["children"]] == ["filter"]
        assert root["wall_seconds"] >= root["children"][0]["wall_seconds"]


class TestChromeTrace:
    def test_complete_events_in_microseconds(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query"):
            tracer.record("decode", 0.002, lod=1)
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["query", "decode"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        decode = events[1]
        assert decode["dur"] == pytest.approx(2000.0)
        assert decode["args"] == {"lod": 1}
        json.dumps(doc)  # must be serializable as-is

    def test_non_jsonable_attrs_become_strings(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", target=("a", "b")):
            pass
        (event,) = tracer.to_chrome_trace()["traceEvents"]
        assert event["args"]["target"] == "('a', 'b')"


class TestTimedPhase:
    def test_unknown_phase_raises(self):
        with pytest.raises(AttributeError):
            TimedPhase(Tracer(enabled=True), QueryStats(), "nonsense")
        with pytest.raises(AttributeError):
            TimedPhase(DISABLED_TRACER, QueryStats(), "nonsense")

    def test_accumulates_into_stats_when_disabled(self):
        stats = QueryStats()
        with TimedPhase(DISABLED_TRACER, stats, "filter"):
            pass
        with TimedPhase(DISABLED_TRACER, stats, "filter"):
            pass
        assert stats.filter_seconds > 0.0
        assert DISABLED_TRACER.roots == []

    def test_span_and_stats_carry_the_same_duration(self):
        tracer = Tracer(enabled=True)
        stats = QueryStats()
        with TimedPhase(tracer, stats, "compute", target=3):
            pass
        (span,) = tracer.roots
        assert span.name == "compute"
        assert span.attrs == {"target": 3}
        assert stats.compute_seconds == span.wall_seconds

    def test_exception_still_accumulates(self):
        tracer = Tracer(enabled=True)
        stats = QueryStats()
        with pytest.raises(ValueError):
            with TimedPhase(tracer, stats, "filter"):
                raise ValueError("nope")
        assert stats.filter_seconds == tracer.roots[0].wall_seconds
        assert tracer.roots[0].attrs["error"] == "ValueError: nope"


class TestPhaseTotals:
    def test_decode_under_compute_is_reattributed(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query"):
            tracer.record("filter", 0.1)
            with tracer.span("compute") as compute:
                tracer.record("decode", 0.25)
            compute.wall_seconds = 1.0  # pin for exact arithmetic
        totals = phase_totals(tracer)
        assert totals["filter"] == pytest.approx(0.1)
        assert totals["decode"] == pytest.approx(0.25)
        # decode happened inside compute: subtracted from the compute total
        assert totals["compute"] == pytest.approx(0.75)

    def test_top_level_decode_not_subtracted(self):
        tracer = Tracer(enabled=True)
        tracer.record("decode", 0.2)
        with tracer.span("compute") as compute:
            pass
        compute.wall_seconds = 0.5
        totals = phase_totals(tracer.roots)
        assert totals["decode"] == pytest.approx(0.2)
        assert totals["compute"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_labels(self):
        c = Counter("repro_things_total", "things")
        c.inc()
        c.inc(2.0)
        c.inc(kind="decode")
        assert c.value() == 3.0
        assert c.value(kind="decode") == 1.0
        assert c.value(kind="other") == 0.0

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("repro_resident_bytes")
        g.set(100.0)
        g.inc(5.0)
        g.dec(25.0)
        assert g.value() == 80.0


class TestHistogram:
    def test_observe_and_cumulative_buckets(self):
        h = Histogram("repro_lat_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(5.605)
        assert h.bucket_counts() == {0.01: 1, 0.1: 3, 1.0: 4}

    def test_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "x")
        b = registry.counter("repro_x_total")
        assert a is b
        assert registry.get("repro_x_total") is a
        assert registry.names() == ["repro_x_total"]

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError):
            registry.histogram("repro_x_total")

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Cache hits").inc(3, dataset="a")
        registry.gauge("repro_bytes", "Resident").set(42)
        registry.histogram("repro_lat_seconds", "Latency", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.to_prometheus()
        assert "# HELP repro_hits_total Cache hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{dataset="a"} 3' in text
        assert "# TYPE repro_bytes gauge" in text
        assert "repro_bytes 42" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.05" in text
        assert "repro_lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_to_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "Cache hits").inc(2)
        registry.histogram("repro_lat_seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.to_dict()
        assert snap["repro_hits_total"] == {
            "type": "counter",
            "help": "Cache hits",
            "value": 2.0,
        }
        hist = snap["repro_lat_seconds"]["value"]
        assert hist["count"] == 1
        assert hist["sum"] == 0.5
        json.dumps(snap)  # JSON-ready as promised

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(reason='say "hi"\nbye')
        text = registry.to_prometheus()
        assert 'reason="say \\"hi\\"\\nbye"' in text


# ---------------------------------------------------------------------------
# Structured logs
# ---------------------------------------------------------------------------


class TestStructuredLogs:
    def test_json_formatter_merges_event_fields(self):
        stream = io.StringIO()
        handler = configure_json_logging(stream)
        try:
            log_event(get_logger("test"), "decode_fallback", lod=2, dataset="a")
        finally:
            logging.getLogger("repro").removeHandler(handler)
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "decode_fallback"
        assert payload["logger"] == "repro.test"
        assert payload["level"] == "info"
        assert payload["lod"] == 2
        assert payload["dataset"] == "a"
        assert isinstance(payload["ts"], float)

    def test_log_event_respects_level(self):
        stream = io.StringIO()
        handler = configure_json_logging(stream, level=logging.ERROR)
        try:
            log_event(get_logger("test"), "quiet", level=logging.INFO)
            log_event(get_logger("test"), "loud", level=logging.ERROR, code=1)
        finally:
            logging.getLogger("repro").removeHandler(handler)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [line["event"] for line in lines] == ["loud"]

    def test_formatter_includes_exception(self):
        formatter = JsonFormatter()
        try:
            raise KeyError("gone")
        except KeyError:
            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "boom", None,
                exc_info=sys.exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert "KeyError" in payload["exception"]


# ---------------------------------------------------------------------------
# Cache counter semantics (satellite: evictions + coherence)
# ---------------------------------------------------------------------------


class _Blob:
    """Stand-in cache entry with a fixed byte size."""

    def __init__(self, nbytes: int):
        self.nbytes = nbytes


class TestCacheCounters:
    def test_evictions_count_entries_and_bytes(self):
        registry = MetricsRegistry()
        cache = DecodeCache(capacity_bytes=250, metrics=registry)
        cache.put(("a", 1, 0), _Blob(100))
        cache.put(("a", 2, 0), _Blob(100))
        cache.put(("a", 3, 0), _Blob(100))  # evicts the LRU entry
        assert cache.evictions == 1
        assert cache.evicted_bytes == 100
        assert cache.bytes_used == 200
        assert registry.get("repro_cache_evictions_total").value() == 1
        assert registry.get("repro_cache_evicted_bytes_total").value() == 100
        assert registry.get("repro_cache_resident_bytes").value() == 200
        assert registry.get("repro_cache_entries").value() == 2

    def test_purge_and_clear_keep_lifetime_counters(self):
        registry = MetricsRegistry()
        cache = DecodeCache(capacity_bytes=1000, metrics=registry)
        cache.put(("a", 1, 0), _Blob(100))
        cache.put(("b", 1, 0), _Blob(100))
        assert cache.get(("a", 1, 0)) is not None
        assert cache.get(("a", 9, 0)) is None
        hits, misses = cache.hits, cache.misses
        assert cache.purge_dataset("a") == 1
        assert (cache.hits, cache.misses) == (hits, misses)
        assert cache.evictions == 0  # purges are not evictions
        cache.clear()
        assert (cache.hits, cache.misses) == (hits, misses)
        assert cache.bytes_used == 0
        assert registry.get("repro_cache_resident_bytes").value() == 0
        assert registry.get("repro_cache_entries").value() == 0

    def test_reset_counters(self):
        cache = DecodeCache(capacity_bytes=1000, metrics=MetricsRegistry())
        cache.put(("a", 1, 0), _Blob(10))
        cache.get(("a", 1, 0))
        cache.get(("a", 2, 0))
        cache.reset_counters()
        assert (cache.hits, cache.misses, cache.evictions, cache.evicted_bytes) == (
            0, 0, 0, 0,
        )
        assert len(cache) == 1  # entries survive a counter reset

    def test_required_series_present_at_zero(self):
        registry = MetricsRegistry()
        DecodeCache(metrics=registry)
        text = registry.to_prometheus()
        for series in (
            "repro_cache_hits_total 0",
            "repro_cache_misses_total 0",
            "repro_cache_evictions_total 0",
            "repro_cache_evicted_bytes_total 0",
        ):
            assert series in text


# ---------------------------------------------------------------------------
# Engine integration: the trace agrees with QueryStats
# ---------------------------------------------------------------------------


def _traced_engine(datasets, **config_kwargs):
    config = EngineConfig(tracing=True, metrics=MetricsRegistry(), **config_kwargs)
    engine = ThreeDPro(config)
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


class TestEngineTracing:
    def test_nn_join_trace_matches_stats(self, datasets):
        engine = _traced_engine(datasets)
        result = engine.nn_join("nuclei_a", "vessels")
        stats = result.stats
        roots = engine.tracer.roots
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "query"
        assert root.attrs["query"] == "nn_join"
        assert root.attrs["results"] == stats.results
        totals = phase_totals(engine.tracer)
        assert totals["filter"] == pytest.approx(stats.filter_seconds, abs=1e-6)
        assert totals["decode"] == pytest.approx(stats.decode_seconds, abs=1e-6)
        assert totals["compute"] == pytest.approx(stats.compute_seconds, abs=1e-6)
        assert root.wall_seconds == pytest.approx(stats.total_seconds, abs=1e-6)
        names = {span.name for span in engine.tracer.walk()}
        assert {"query", "filter", "compute"} <= names

    def test_intersection_join_trace_matches_stats(self, datasets):
        engine = _traced_engine(datasets)
        stats = engine.intersection_join("nuclei_a", "nuclei_b").stats
        totals = phase_totals(engine.tracer)
        assert totals["filter"] == pytest.approx(stats.filter_seconds, abs=1e-6)
        assert totals["decode"] == pytest.approx(stats.decode_seconds, abs=1e-6)
        assert totals["compute"] == pytest.approx(stats.compute_seconds, abs=1e-6)
        # refine rounds show up as compute children with LOD attributes
        lods = [
            span.attrs["lod"]
            for span in engine.tracer.walk()
            if span.name == "refine"
        ]
        assert lods, "expected refine spans under compute"

    def test_metrics_registry_sees_the_query(self, datasets):
        engine = _traced_engine(datasets)
        engine.nn_join("nuclei_a", "vessels")
        registry = engine.metrics
        assert registry.get("repro_queries_total").value(query="nn_join") == 1
        assert registry.get("repro_query_seconds").count() == 1
        cache_activity = (
            registry.get("repro_cache_hits_total").value()
            + registry.get("repro_cache_misses_total").value()
        )
        assert cache_activity > 0
        text = registry.to_prometheus()
        for series in (
            "repro_cache_hits_total",
            "repro_decode_failures_total",
            "repro_task_retries_total",
        ):
            assert series in text

    def test_chrome_trace_export_is_loadable(self, datasets):
        engine = _traced_engine(datasets)
        engine.nn_join("nuclei_a", "vessels")
        doc = json.loads(json.dumps(engine.tracer.to_chrome_trace()))
        assert doc["traceEvents"]
        for event in doc["traceEvents"]:
            assert set(event) == {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_disabled_tracing_uses_noop_spans_and_collects_nothing(self, datasets):
        config = EngineConfig(metrics=MetricsRegistry())
        engine = ThreeDPro(config)
        for dataset in datasets.values():
            engine.load_dataset(dataset)
        assert engine.tracer.enabled is False
        assert engine.tracer.span("anything") is NOOP_SPAN
        stats = engine.nn_join("nuclei_a", "vessels").stats
        assert engine.tracer.roots == []
        # QueryStats is still fully populated without the tracer
        assert stats.total_seconds > 0.0
        assert stats.filter_seconds > 0.0
        assert stats.compute_seconds > 0.0
