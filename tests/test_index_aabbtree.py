"""Tests for the per-object AABB-tree (intra-geometry index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import tri_tri_distance_batch, tri_tri_intersect_batch
from repro.index import TriangleAABBTree
from repro.mesh import box_mesh, icosphere


def brute_force_distance(tris_a, tris_b):
    ii, jj = np.meshgrid(np.arange(len(tris_a)), np.arange(len(tris_b)), indexing="ij")
    return float(
        tri_tri_distance_batch(
            tris_a[ii.ravel()], tris_b[jj.ravel()], check_intersection=False
        ).min()
    )


def brute_force_intersects(tris_a, tris_b):
    ii, jj = np.meshgrid(np.arange(len(tris_a)), np.arange(len(tris_b)), indexing="ij")
    return bool(tri_tri_intersect_batch(tris_a[ii.ravel()], tris_b[jj.ravel()]).any())


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TriangleAABBTree(np.zeros((0, 3, 3)))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            TriangleAABBTree(icosphere(1).triangles, leaf_size=0)

    def test_root_box_covers_all(self):
        mesh = icosphere(2)
        tree = TriangleAABBTree(mesh.triangles)
        assert np.allclose(tree.node_low[0], mesh.triangles.min(axis=(0, 1)))
        assert np.allclose(tree.node_high[0], mesh.triangles.max(axis=(0, 1)))

    def test_order_is_permutation(self):
        tree = TriangleAABBTree(icosphere(2).triangles, leaf_size=4)
        assert sorted(tree.order.tolist()) == list(range(len(tree.triangles)))


class TestIntersects:
    def test_disjoint_spheres(self):
        a = TriangleAABBTree(icosphere(2, center=(0, 0, 0)).triangles)
        b = TriangleAABBTree(icosphere(2, center=(5, 0, 0)).triangles)
        assert not a.intersects(b)

    def test_overlapping_spheres(self):
        a = TriangleAABBTree(icosphere(2, center=(0, 0, 0)).triangles)
        b = TriangleAABBTree(icosphere(2, center=(1.2, 0, 0)).triangles)
        assert a.intersects(b)

    def test_touching_boxes(self):
        a = TriangleAABBTree(box_mesh((0, 0, 0), (1, 1, 1)).triangles)
        b = TriangleAABBTree(box_mesh((1, 0, 0), (2, 1, 1)).triangles)
        assert a.intersects(b)

    def test_nested_surfaces_do_not_intersect(self):
        # One sphere strictly inside the other: surfaces are disjoint.
        a = TriangleAABBTree(icosphere(2, radius=1.0).triangles)
        b = TriangleAABBTree(icosphere(2, radius=0.3).triangles)
        assert not a.intersects(b)

    def test_stats_counts_fewer_pairs_than_bruteforce(self):
        a = icosphere(2, center=(0, 0, 0)).triangles
        b = icosphere(2, center=(3, 0, 0)).triangles
        stats = {}
        TriangleAABBTree(a).intersects(TriangleAABBTree(b), stats=stats)
        assert stats.get("pairs", 0) < len(a) * len(b) / 4

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        offset = rng.uniform(0, 2.5, size=3)
        a = icosphere(1, radius=1.0).triangles
        b = icosphere(1, radius=1.0, center=tuple(offset)).triangles
        assert TriangleAABBTree(a).intersects(TriangleAABBTree(b)) == (
            brute_force_intersects(a, b)
        )


class TestMinDistance:
    def test_matches_bruteforce_on_spheres(self):
        a = icosphere(2, center=(0, 0, 0)).triangles
        b = icosphere(2, center=(4, 1, -0.5)).triangles
        tree_a, tree_b = TriangleAABBTree(a), TriangleAABBTree(b)
        assert tree_a.min_distance(tree_b) == pytest.approx(brute_force_distance(a, b))

    def test_symmetric(self):
        a = TriangleAABBTree(icosphere(1, center=(0, 0, 0)).triangles)
        b = TriangleAABBTree(icosphere(1, center=(3, 2, 1)).triangles)
        assert a.min_distance(b) == pytest.approx(b.min_distance(a))

    def test_stop_below_early_exit(self):
        a = TriangleAABBTree(icosphere(2).triangles)
        b = TriangleAABBTree(icosphere(2, center=(2.5, 0, 0)).triangles)
        stats_full, stats_early = {}, {}
        full = a.min_distance(b, stats=stats_full)
        early = a.min_distance(b, stop_below=10.0, stats=stats_early)
        # Early exit may return a coarser (but valid upper-bound) value.
        assert early >= full - 1e-12
        assert stats_early.get("pairs", 0) <= stats_full.get("pairs", 0)

    def test_upper_bound_pruning_preserves_result_when_below(self):
        a = TriangleAABBTree(icosphere(2).triangles)
        b = TriangleAABBTree(icosphere(2, center=(3, 0, 0)).triangles)
        exact = a.min_distance(b)
        bounded = a.min_distance(b, upper_bound=exact + 0.5)
        assert bounded == pytest.approx(exact)

    def test_upper_bound_returned_when_true_distance_above(self):
        a = TriangleAABBTree(icosphere(1).triangles)
        b = TriangleAABBTree(icosphere(1, center=(10, 0, 0)).triangles)
        assert a.min_distance(b, upper_bound=1.0) == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_matches_bruteforce_random(self, seed):
        rng = np.random.default_rng(seed)
        offset = rng.uniform(2.2, 6, size=3)
        a = icosphere(1).triangles
        b = icosphere(1, center=tuple(offset)).triangles
        tree = TriangleAABBTree(a).min_distance(TriangleAABBTree(b))
        assert tree == pytest.approx(brute_force_distance(a, b))

    def test_prunes_pairs_versus_bruteforce(self):
        a = icosphere(3).triangles
        b = icosphere(3, center=(4, 0, 0)).triangles
        stats = {}
        TriangleAABBTree(a).min_distance(TriangleAABBTree(b), stats=stats)
        assert stats["pairs"] < len(a) * len(b) / 10
