"""Tests for the triangle-triangle intersection kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import tri_tri_intersect, tri_tri_intersect_batch

XY = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)


def tri(*pts):
    return np.asarray(pts, dtype=float)


class TestDisjoint:
    def test_parallel_planes(self):
        other = XY + np.array([0, 0, 1.0])
        assert not tri_tri_intersect(XY, other)

    def test_far_apart(self):
        other = XY + np.array([10.0, 10.0, 10.0])
        assert not tri_tri_intersect(XY, other)

    def test_coplanar_disjoint(self):
        other = XY + np.array([5.0, 0.0, 0.0])
        assert not tri_tri_intersect(XY, other)

    def test_crossing_plane_but_missing_triangle(self):
        # Crosses the z=0 plane, but far outside the XY triangle.
        other = tri((5, 5, -1), (6, 5, 1), (5, 6, 1))
        assert not tri_tri_intersect(XY, other)


class TestIntersecting:
    def test_piercing(self):
        other = tri((0.25, 0.25, -1), (0.25, 0.25, 1), (0.3, 0.4, 1))
        assert tri_tri_intersect(XY, other)

    def test_coplanar_overlapping(self):
        other = XY + np.array([0.2, 0.2, 0.0])
        assert tri_tri_intersect(XY, other)

    def test_identical(self):
        assert tri_tri_intersect(XY, XY.copy())

    def test_shared_vertex_counts_as_intersecting(self):
        other = tri((0, 0, 0), (-1, 0, 1), (0, -1, 1))
        assert tri_tri_intersect(XY, other)

    def test_shared_edge_counts_as_intersecting(self):
        other = tri((0, 0, 0), (1, 0, 0), (0.5, -1, 1))
        assert tri_tri_intersect(XY, other)

    def test_touching_at_interior_point(self):
        # Vertex of one triangle touches the interior of the other.
        other = tri((0.25, 0.25, 0.0), (0.25, 0.25, 1.0), (1.25, 0.25, 1.0))
        assert tri_tri_intersect(XY, other)

    def test_t_configuration_coplanar(self):
        other = tri((0.2, 0.2, 0), (2, 0.2, 0), (2, 0.3, 0))
        assert tri_tri_intersect(XY, other)


class TestBatch:
    def test_batch_mixed(self):
        a = np.stack([XY, XY, XY])
        b = np.stack(
            [
                XY + np.array([0, 0, 1.0]),
                tri((0.25, 0.25, -1), (0.25, 0.25, 1), (0.3, 0.4, 1)),
                XY + np.array([5.0, 0, 0]),
            ]
        )
        assert tri_tri_intersect_batch(a, b).tolist() == [False, True, False]

    def test_empty_batch(self):
        empty = np.zeros((0, 3, 3))
        assert tri_tri_intersect_batch(empty, empty).shape == (0,)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            tri_tri_intersect_batch(np.zeros((2, 3, 3)), np.zeros((3, 3, 3)))

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(64, 3, 3))
        b = rng.normal(size=(64, 3, 3))
        fwd = tri_tri_intersect_batch(a, b)
        rev = tri_tri_intersect_batch(b, a)
        assert (fwd == rev).all()


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_segment_sampling_agrees_with_sat(seed):
    """Randomized cross-check: if dense point sampling of one triangle
    finds points on both sides of the other's plane *and* inside its
    projection, SAT must agree; and SAT=False implies sampled distance
    stays positive."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(3, 3))
    b = rng.uniform(-1, 1, size=(3, 3))
    hit = tri_tri_intersect(a, b)

    # Sample barycentric grids of both triangles; min pairwise distance.
    ws = []
    for i in range(8):
        for j in range(8 - i):
            u, v = i / 7.0, j / 7.0
            if u + v <= 1.0:
                ws.append((1 - u - v, u, v))
    w = np.asarray(ws)
    pa = w @ a
    pb = w @ b
    dmin = np.sqrt(((pa[:, None, :] - pb[None, :, :]) ** 2).sum(-1)).min()
    if dmin < 1e-9:
        assert hit  # a (near-)common point exists -> must intersect
    if not hit:
        # SAT separation implies sampled points stay apart.
        assert dmin > -1e-12
