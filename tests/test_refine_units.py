"""Unit tests for the refinement helpers, isolated from the engine."""

import math

import numpy as np
import pytest

from repro.compression import PPVPEncoder
from repro.core.refine import NNCandidate, RefineContext, _kth_smallest, refine_nn
from repro.core.stats import QueryStats
from repro.mesh import icosphere
from repro.parallel import Device, GeometryComputer
from repro.storage import DecodeCache, DecodedObjectProvider


class TestKthSmallest:
    def test_basic(self):
        assert _kth_smallest([3.0, 1.0, 2.0], 1) == 1.0
        assert _kth_smallest([3.0, 1.0, 2.0], 2) == 2.0

    def test_k_beyond_length(self):
        assert _kth_smallest([5.0, 4.0], 10) == 5.0

    def test_empty(self):
        assert _kth_smallest([], 3) == math.inf


def make_context(sources, targets):
    cache = DecodeCache()
    encoder = PPVPEncoder(max_lods=4)
    src_objs = [encoder.encode(m) for m in sources]
    tgt_objs = [encoder.encode(m) for m in targets]
    source_provider = DecodedObjectProvider("s", src_objs, cache)
    target_provider = DecodedObjectProvider("t", tgt_objs, cache)
    top = max(o.max_lod for o in src_objs + tgt_objs)
    ctx = RefineContext(
        computer=GeometryComputer(Device.CPU),
        stats=QueryStats(),
        target_provider=target_provider,
        source_provider=source_provider,
        lods=tuple(range(top + 1)),
    )
    return ctx


class TestRefineNNUnits:
    @pytest.fixture(scope="class")
    def ctx(self):
        targets = [icosphere(1, center=(0, 0, 0))]
        sources = [
            icosphere(1, center=(3.0, 0, 0)),   # nearest
            icosphere(1, center=(5.0, 0, 0)),
            icosphere(1, center=(40.0, 0, 0)),  # hopeless
        ]
        return make_context(sources, targets)

    def _candidates(self):
        # Generous hand-built ranges (sound but loose).
        return [
            NNCandidate(0, 0.5, 4.0),
            NNCandidate(1, 2.5, 7.0),
            NNCandidate(2, 37.0, 45.0),
        ]

    def test_empty_candidates(self, ctx):
        assert refine_nn(ctx, 0, [], k=1) == []

    def test_nearest_found(self, ctx):
        out = refine_nn(ctx, 0, self._candidates(), k=1)
        assert len(out) == 1
        assert out[0].sid == 0
        # True gap between unit spheres at distance 3 is ~1 (faceted: a
        # bit more); an early return reports a coarse-LOD upper bound,
        # which for LOD0 geometry can sit noticeably above the true gap.
        assert 0.9 <= out[0].maxdist <= 2.5

    def test_hopeless_candidate_pruned_without_evaluation(self, ctx):
        stats_before = dict(ctx.stats.pairs_evaluated_by_lod)
        out = refine_nn(ctx, 0, self._candidates(), k=1)
        assert out[0].sid == 0
        # Candidate 2 (mindist 37) must never survive past the first prune;
        # total evaluations stay small.
        total_new = sum(ctx.stats.pairs_evaluated_by_lod.values()) - sum(
            stats_before.values()
        )
        assert total_new <= 2 * len(ctx.lods)

    def test_k2_returns_both_near_spheres(self, ctx):
        out = refine_nn(ctx, 0, self._candidates(), k=2)
        assert {c.sid for c in out} == {0, 1}

    def test_k_larger_than_candidates(self, ctx):
        out = refine_nn(ctx, 0, self._candidates(), k=10)
        assert len(out) == 3


class _StubDecode:
    """Minimal stand-in for a DecodedLOD (triangles + flags only)."""

    def __init__(self, triangles):
        self.triangles = np.asarray(triangles, dtype=float).reshape(-1, 3, 3)
        self.degraded = False
        self.tree = None

    @property
    def num_faces(self):
        return len(self.triangles)


class _StubProvider:
    """Provider serving pre-built decodes (no compression involved)."""

    def __init__(self, decs):
        import types

        self._decs = decs
        self.objects = [
            types.SimpleNamespace(
                aabb=(
                    d.triangles.min(axis=(0, 1))
                    if len(d.triangles)
                    else np.zeros(3),
                    d.triangles.max(axis=(0, 1))
                    if len(d.triangles)
                    else np.zeros(3),
                )
            )
            for d in decs
        ]

    def max_lod(self, obj_id):
        return 0

    def get(self, obj_id, lod, deadline=None, funnel=None):
        return self._decs[obj_id]


def _stub_ctx(target_decs, source_decs):
    return RefineContext(
        computer=GeometryComputer(Device.CPU),
        stats=QueryStats(),
        target_provider=_StubProvider(target_decs),
        source_provider=_StubProvider(source_decs),
        lods=(0,),
    )


class TestEmptyMeshContainmentStage:
    """Salvage loading can hand refinement a decodable-but-empty mesh;
    the containment stage used to crash on it (``triangles[0, 0]`` and a
    reduction over zero faces)."""

    def test_empty_target_is_degraded_not_crash(self):
        from repro.core.refine import refine_intersection

        ctx = _stub_ctx(
            target_decs=[_StubDecode(np.zeros((0, 3, 3)))],
            source_decs=[_StubDecode(icosphere(1).triangles)],
        )
        out = refine_intersection(ctx, 0, {0: None})
        assert out == []
        assert ("target", 0) in ctx.degraded_keys
        assert dict(ctx.stats.pairs_pruned_by_lod) == {0: 1}

    def test_empty_source_is_degraded_not_crash(self):
        from repro.core.refine import refine_intersection

        # Two disjoint real spheres would reach the containment stage;
        # here the candidate decodes to zero faces at the top LOD.
        ctx = _stub_ctx(
            target_decs=[_StubDecode(icosphere(1).triangles)],
            source_decs=[_StubDecode(np.zeros((0, 3, 3)))],
        )
        out = refine_intersection(ctx, 0, {0: None})
        assert out == []
        assert ("source", 0) in ctx.degraded_keys
        assert dict(ctx.stats.pairs_pruned_by_lod) == {0: 1}


class TestWithinFallbackLedger:
    """The undecodable-target MBB fallback confirms pairs via
    ``box_upper_bound``; those evaluations must land on the pairs ledger
    (they used to be invisible: results without evaluations)."""

    def test_fallback_accounts_evaluated_and_pruned(self):
        from repro.core.refine import refine_within
        from repro.faults import FaultInjector

        cache = DecodeCache()
        encoder = PPVPEncoder(max_lods=4)
        targets = [encoder.encode(icosphere(1, center=(0, 0, 0)))]
        sources = [
            encoder.encode(icosphere(1, center=(3.0, 0, 0))),   # MAXDIST ~5.7
            encoder.encode(icosphere(1, center=(50.0, 0, 0))),  # hopeless
        ]
        ctx = RefineContext(
            computer=GeometryComputer(Device.CPU),
            stats=QueryStats(),
            target_provider=DecodedObjectProvider(
                "t", targets, cache,
                fault_injector=FaultInjector(seed=1, decode_error_rate=1.0),
            ),
            source_provider=DecodedObjectProvider("s", sources, cache),
            lods=(0, 1),
        )
        out = refine_within(ctx, 0, {0: None, 1: None}, distance=10.0)
        assert out == [0]  # the near pair is confirmable from MBBs alone
        assert ("target", 0) in ctx.degraded_keys
        # Both survivors were evaluated at the failing LOD and both
        # settled there (one confirmed, one excluded): the per-LOD
        # pruned <= evaluated invariant holds with equality.
        assert dict(ctx.stats.pairs_evaluated_by_lod) == {0: 2}
        assert dict(ctx.stats.pairs_pruned_by_lod) == {0: 2}
