"""Unit tests for the refinement helpers, isolated from the engine."""

import math

import numpy as np
import pytest

from repro.compression import PPVPEncoder
from repro.core.refine import NNCandidate, RefineContext, _kth_smallest, refine_nn
from repro.core.stats import QueryStats
from repro.mesh import icosphere
from repro.parallel import Device, GeometryComputer
from repro.storage import DecodeCache, DecodedObjectProvider


class TestKthSmallest:
    def test_basic(self):
        assert _kth_smallest([3.0, 1.0, 2.0], 1) == 1.0
        assert _kth_smallest([3.0, 1.0, 2.0], 2) == 2.0

    def test_k_beyond_length(self):
        assert _kth_smallest([5.0, 4.0], 10) == 5.0

    def test_empty(self):
        assert _kth_smallest([], 3) == math.inf


def make_context(sources, targets):
    cache = DecodeCache()
    encoder = PPVPEncoder(max_lods=4)
    src_objs = [encoder.encode(m) for m in sources]
    tgt_objs = [encoder.encode(m) for m in targets]
    source_provider = DecodedObjectProvider("s", src_objs, cache)
    target_provider = DecodedObjectProvider("t", tgt_objs, cache)
    top = max(o.max_lod for o in src_objs + tgt_objs)
    ctx = RefineContext(
        computer=GeometryComputer(Device.CPU),
        stats=QueryStats(),
        target_provider=target_provider,
        source_provider=source_provider,
        lods=tuple(range(top + 1)),
    )
    return ctx


class TestRefineNNUnits:
    @pytest.fixture(scope="class")
    def ctx(self):
        targets = [icosphere(1, center=(0, 0, 0))]
        sources = [
            icosphere(1, center=(3.0, 0, 0)),   # nearest
            icosphere(1, center=(5.0, 0, 0)),
            icosphere(1, center=(40.0, 0, 0)),  # hopeless
        ]
        return make_context(sources, targets)

    def _candidates(self):
        # Generous hand-built ranges (sound but loose).
        return [
            NNCandidate(0, 0.5, 4.0),
            NNCandidate(1, 2.5, 7.0),
            NNCandidate(2, 37.0, 45.0),
        ]

    def test_empty_candidates(self, ctx):
        assert refine_nn(ctx, 0, [], k=1) == []

    def test_nearest_found(self, ctx):
        out = refine_nn(ctx, 0, self._candidates(), k=1)
        assert len(out) == 1
        assert out[0].sid == 0
        # True gap between unit spheres at distance 3 is ~1 (faceted: a
        # bit more); an early return reports a coarse-LOD upper bound,
        # which for LOD0 geometry can sit noticeably above the true gap.
        assert 0.9 <= out[0].maxdist <= 2.5

    def test_hopeless_candidate_pruned_without_evaluation(self, ctx):
        stats_before = dict(ctx.stats.pairs_evaluated_by_lod)
        out = refine_nn(ctx, 0, self._candidates(), k=1)
        assert out[0].sid == 0
        # Candidate 2 (mindist 37) must never survive past the first prune;
        # total evaluations stay small.
        total_new = sum(ctx.stats.pairs_evaluated_by_lod.values()) - sum(
            stats_before.values()
        )
        assert total_new <= 2 * len(ctx.lods)

    def test_k2_returns_both_near_spheres(self, ctx):
        out = refine_nn(ctx, 0, self._candidates(), k=2)
        assert {c.sid for c in out} == {0, 1}

    def test_k_larger_than_candidates(self, ctx):
        out = refine_nn(ctx, 0, self._candidates(), k=10)
        assert len(out) == 3
