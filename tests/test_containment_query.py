"""Tests for the progressive point-containment query (paper Section 4.1)."""

import numpy as np
import pytest

from repro.compression import PPVPEncoder
from repro.core import EngineConfig, ThreeDPro
from repro.core.plan import QuerySpec
from repro.geometry import point_in_polyhedron
from repro.mesh import icosphere
from repro.storage import Dataset
from tests.test_compression_classify import dented_icosphere


def containment(engine, dataset, point):
    """matches + stats via the unified query API."""
    result = engine.execute(
        QuerySpec(kind="containment", source=dataset, point=tuple(point))
    )
    return result.matches, result.stats


@pytest.fixture(scope="module")
def spheres_engine():
    meshes = [
        icosphere(2, radius=1.0, center=(0, 0, 0)),
        icosphere(2, radius=2.0, center=(0, 0, 0)),  # concentric, contains #0
        icosphere(2, radius=1.0, center=(10, 0, 0)),
    ]
    engine = ThreeDPro(EngineConfig(paradigm="fpr"))
    engine.load_dataset(
        Dataset("spheres", [PPVPEncoder(max_lods=4).encode(m) for m in meshes])
    )
    return engine, meshes


class TestContainmentQuery:
    def test_point_in_nested_spheres(self, spheres_engine):
        engine, _ = spheres_engine
        matches, stats = containment(engine, "spheres", (0.1, 0.1, 0.1))
        assert matches == [0, 1]
        assert stats.results == 2

    def test_point_in_outer_only(self, spheres_engine):
        engine, _ = spheres_engine
        matches, _ = containment(engine, "spheres", (1.5, 0.0, 0.0))
        assert matches == [1]

    def test_point_outside_everything(self, spheres_engine):
        engine, _ = spheres_engine
        matches, stats = containment(engine, "spheres", (5.0, 5.0, 5.0))
        assert matches == []
        assert stats.candidates == 0  # MBB filter kills it

    def test_progressive_early_accept_saves_decodes(self, spheres_engine):
        engine, _ = spheres_engine
        # A deep interior point is inside even the coarsest LOD, so the
        # FPR path should settle at LOD 0 for both containing spheres.
        _matches, stats = containment(engine, "spheres", (0.01, 0.0, 0.0))
        assert stats.pairs_pruned_by_lod.get(0, 0) >= 2

    def test_matches_direct_ray_cast(self, spheres_engine):
        engine, meshes = spheres_engine
        rng = np.random.default_rng(9)
        for point in rng.uniform(-2.5, 2.5, size=(25, 3)):
            expected = sorted(
                i
                for i, mesh in enumerate(meshes)
                if point_in_polyhedron(point, mesh.triangles)
            )
            got, _ = containment(engine, "spheres", point)
            assert got == expected, point

    def test_fr_paradigm_agrees(self, spheres_engine):
        fpr_engine, meshes = spheres_engine
        fr_engine = ThreeDPro(EngineConfig(paradigm="fr"))
        fr_engine.load_dataset(
            Dataset("spheres", [PPVPEncoder(max_lods=4).encode(m) for m in meshes])
        )
        rng = np.random.default_rng(10)
        for point in rng.uniform(-2.2, 2.2, size=(10, 3)):
            fr, _ = containment(fr_engine, "spheres", point)
            fpr, _ = containment(fpr_engine, "spheres", point)
            assert fr == fpr

    def test_nonconvex_object(self):
        mesh, _ = dented_icosphere(subdivisions=2)
        engine = ThreeDPro(EngineConfig(paradigm="fpr"))
        engine.load_dataset(Dataset("dented", [PPVPEncoder(max_lods=4).encode(mesh)]))
        rng = np.random.default_rng(11)
        for point in rng.uniform(-1.05, 1.05, size=(20, 3)):
            expected = point_in_polyhedron(point, mesh.triangles)
            got, _ = containment(engine, "dented", point)
            assert (0 in got) == expected, point


class TestContainmentStats:
    def test_stats_time_phases_accounted(self, spheres_engine):
        engine, _ = spheres_engine
        _matches, stats = containment(engine, "spheres", (0.1, 0.1, 0.1))
        assert stats.total_seconds >= 0
        accounted = stats.filter_seconds + stats.decode_seconds + stats.compute_seconds
        assert accounted <= stats.total_seconds + 1e-6
