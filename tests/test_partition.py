"""Tests for skeleton extraction, OBB fitting, and object partitioning."""

import numpy as np
import pytest

from repro.datagen.vessels import VesselSpec, make_vessel
from repro.geometry import AABB
from repro.mesh import icosphere
from repro.partition import extract_skeleton, obb_of_points, partition_faces
from repro.partition.skeleton import nearest_skeleton_point


class TestSkeleton:
    def test_count_and_shape(self):
        points = np.random.default_rng(0).uniform(size=(200, 3))
        skeleton = extract_skeleton(points, 6)
        assert skeleton.shape == (6, 3)

    def test_never_more_points_than_input(self):
        points = np.random.default_rng(0).uniform(size=(4, 3))
        assert len(extract_skeleton(points, 10)) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            extract_skeleton(np.zeros((0, 3)), 3)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            extract_skeleton(np.zeros((5, 3)), 0)

    def test_deterministic(self):
        points = np.random.default_rng(1).uniform(size=(100, 3))
        a = extract_skeleton(points, 5)
        b = extract_skeleton(points, 5)
        assert np.array_equal(a, b)

    def test_skeleton_spreads_along_elongated_cloud(self):
        # Points along a line: skeleton points should span most of it.
        t = np.linspace(0, 10, 500)
        points = np.stack([t, np.zeros_like(t), np.zeros_like(t)], axis=1)
        skeleton = extract_skeleton(points, 5)
        span = skeleton[:, 0].max() - skeleton[:, 0].min()
        assert span > 6.0

    def test_nearest_assignment(self):
        skeleton = np.array([[0, 0, 0], [10, 0, 0]], dtype=float)
        points = np.array([[1, 0, 0], [9, 0, 0], [4, 0, 0]], dtype=float)
        assert nearest_skeleton_point(points, skeleton).tolist() == [0, 1, 0]


class TestOBB:
    def test_axis_aligned_cloud(self):
        rng = np.random.default_rng(2)
        points = rng.uniform((-1, -2, -3), (1, 2, 3), size=(500, 3))
        obb = obb_of_points(points)
        # PCA boxes are not minimal; allow modest slack over the true box.
        assert obb.volume <= 2 * 4 * 6 * 1.3

    def test_obb_tighter_than_aabb_for_rotated_box(self):
        rng = np.random.default_rng(3)
        local = rng.uniform((-4, -0.5, -0.5), (4, 0.5, 0.5), size=(800, 3))
        theta = np.pi / 4
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        points = local @ rot.T
        obb = obb_of_points(points)
        aabb = AABB.of_points(points)
        assert obb.volume < aabb.volume * 0.6

    def test_contains_its_points(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(100, 3))
        obb = obb_of_points(points)
        for p in points:
            assert obb.contains_point(p, tol=1e-6)

    def test_aabb_covers_corners(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(50, 3))
        obb = obb_of_points(points)
        box = obb.aabb()
        for corner in obb.corners():
            assert box.contains_point(tuple(corner + 0))

    def test_single_point(self):
        obb = obb_of_points(np.array([[1.0, 2.0, 3.0]]))
        assert obb.center == pytest.approx((1.0, 2.0, 3.0))
        assert obb.volume == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            obb_of_points(np.zeros((0, 3)))


class TestPartitioner:
    @pytest.fixture(scope="class")
    def vessel(self):
        rng = np.random.default_rng(6)
        return make_vessel(
            rng, spec=VesselSpec(bifurcations=3, points_per_branch=5, segments=8)
        )

    def test_every_face_assigned(self, vessel):
        partition = partition_faces(vessel, 8)
        assert sum(s.face_count for s in partition.sub_objects) == vessel.num_faces

    def test_boxes_cover_their_faces(self, vessel):
        partition = partition_faces(vessel, 8)
        groups = partition.group_faces(vessel.triangles)
        for sub in partition.sub_objects:
            tris = vessel.triangles[groups == sub.index]
            covered = AABB.of_points(tris.reshape(-1, 3))
            assert sub.aabb.contains_box(covered)

    def test_partition_boxes_tighter_than_global(self, vessel):
        partition = partition_faces(vessel, 12)
        total = sum(s.aabb.volume for s in partition.sub_objects)
        assert total < vessel.aabb.volume * 0.8

    def test_single_part_degenerates_to_whole(self, vessel):
        partition = partition_faces(vessel, 1)
        assert partition.num_parts == 1
        assert partition.sub_objects[0].face_count == vessel.num_faces

    def test_group_faces_consistent_with_partition(self, vessel):
        partition = partition_faces(vessel, 6)
        groups = partition.group_faces(vessel.triangles)
        counts = np.bincount(groups, minlength=partition.num_parts)
        assert counts.tolist() == [s.face_count for s in partition.sub_objects]

    def test_compact_sphere_partitions_fine_too(self):
        mesh = icosphere(2)
        partition = partition_faces(mesh, 4)
        assert 1 <= partition.num_parts <= 4
        assert sum(s.face_count for s in partition.sub_objects) == mesh.num_faces

    def test_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            partition_faces(icosphere(1), 0)
