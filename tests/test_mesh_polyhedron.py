"""Tests for the Polyhedron value type and mesh measures."""

import math

import numpy as np
import pytest

from repro.mesh import (
    MeshValidationError,
    Polyhedron,
    box_mesh,
    icosphere,
    mesh_surface_area,
    mesh_volume,
    tetrahedron,
    validate_polyhedron,
)
from repro.mesh.measures import mesh_centroid


class TestConstruction:
    def test_rejects_bad_vertex_shape(self):
        with pytest.raises(ValueError):
            Polyhedron(np.zeros((3, 2)), [(0, 1, 2)])

    def test_rejects_out_of_range_faces(self):
        with pytest.raises(ValueError):
            Polyhedron(np.zeros((3, 3)), [(0, 1, 5)])

    def test_arrays_are_read_only(self):
        mesh = tetrahedron()
        with pytest.raises(ValueError):
            mesh.vertices[0, 0] = 99.0

    def test_triangles_shape(self):
        mesh = box_mesh()
        assert mesh.triangles.shape == (12, 3, 3)

    def test_aabb_uses_referenced_vertices_only(self):
        # An extra far-away vertex not referenced by any face must not
        # inflate the bounding box (LOD meshes share the full table).
        base = box_mesh((0, 0, 0), (1, 1, 1))
        vertices = np.vstack([base.vertices, [100.0, 100.0, 100.0]])
        mesh = Polyhedron(vertices, base.faces)
        assert mesh.aabb.high == (1.0, 1.0, 1.0)

    def test_compacted_drops_unused(self):
        base = box_mesh()
        vertices = np.vstack([base.vertices, [9.0, 9.0, 9.0]])
        mesh = Polyhedron(vertices, base.faces).compacted()
        assert mesh.num_vertices == 8
        validate_polyhedron(mesh)

    def test_translated_and_scaled(self):
        mesh = box_mesh((0, 0, 0), (2, 2, 2)).translated((1, 0, 0))
        assert mesh.aabb.low == (1.0, 0.0, 0.0)
        shrunk = mesh.scaled(0.5)
        assert shrunk.aabb.extents == pytest.approx((1.0, 1.0, 1.0))
        # scaling about the center keeps the center fixed
        assert shrunk.aabb.center == pytest.approx(mesh.aabb.center)

    def test_canonical_face_set_rotation_invariant(self):
        a = Polyhedron(np.eye(3), [(0, 1, 2)])
        b = Polyhedron(np.eye(3), [(1, 2, 0)])
        c = Polyhedron(np.eye(3), [(0, 2, 1)])  # flipped orientation
        assert a.canonical_face_set() == b.canonical_face_set()
        assert a.canonical_face_set() != c.canonical_face_set()


class TestMeasures:
    def test_box_volume_and_area(self):
        mesh = box_mesh((0, 0, 0), (2, 3, 4))
        assert mesh_volume(mesh) == pytest.approx(24.0)
        assert mesh_surface_area(mesh) == pytest.approx(2 * (6 + 8 + 12))

    def test_volume_positive_means_outward_orientation(self):
        for mesh in (tetrahedron(), box_mesh(), icosphere(1)):
            assert mesh_volume(mesh) > 0

    def test_icosphere_approaches_analytic_sphere(self):
        coarse = icosphere(1, radius=2.0)
        fine = icosphere(3, radius=2.0)
        exact = 4.0 / 3.0 * math.pi * 8.0
        err_coarse = abs(mesh_volume(coarse) - exact)
        err_fine = abs(mesh_volume(fine) - exact)
        assert err_fine < err_coarse
        assert err_fine / exact < 0.01

    def test_centroid_of_shifted_box(self):
        mesh = box_mesh((1, 2, 3), (3, 4, 5))
        assert mesh_centroid(mesh) == pytest.approx((2.0, 3.0, 4.0))


class TestValidation:
    def test_valid_primitives_pass(self):
        for mesh in (tetrahedron(), box_mesh(), icosphere(0), icosphere(2)):
            validate_polyhedron(mesh)

    def test_open_mesh_rejected(self):
        mesh = box_mesh()
        open_mesh = Polyhedron(mesh.vertices, mesh.faces[:-1])
        with pytest.raises(MeshValidationError):
            validate_polyhedron(open_mesh)

    def test_too_few_faces_rejected(self):
        with pytest.raises(MeshValidationError):
            validate_polyhedron(Polyhedron(np.eye(3), [(0, 1, 2)]))

    def test_inconsistent_orientation_rejected(self):
        mesh = tetrahedron()
        faces = mesh.faces.copy()
        faces[0] = faces[0][::-1]
        with pytest.raises(MeshValidationError):
            validate_polyhedron(Polyhedron(mesh.vertices, faces))

    def test_duplicate_face_rejected(self):
        mesh = tetrahedron()
        faces = np.vstack([mesh.faces, mesh.faces[0]])
        with pytest.raises(MeshValidationError):
            validate_polyhedron(Polyhedron(mesh.vertices, faces))

    def test_degenerate_face_rejected(self):
        vertices = np.array(
            [(0, 0, 0), (1, 0, 0), (1, 0, 0), (0, 1, 0)], dtype=float
        )
        # Face 0-1-2 has two coincident positions.
        faces = [(0, 1, 2), (0, 2, 3), (0, 3, 1), (1, 3, 2)]
        with pytest.raises(MeshValidationError):
            validate_polyhedron(Polyhedron(vertices, faces))

    def test_repeated_vertex_in_face_rejected(self):
        with pytest.raises(MeshValidationError):
            validate_polyhedron(
                Polyhedron(np.eye(3), [(0, 0, 1), (0, 1, 2), (1, 0, 2), (2, 0, 1)])
            )

    def test_two_disjoint_components_are_valid(self):
        a = tetrahedron()
        b = tetrahedron(center=(10, 0, 0))
        vertices = np.vstack([a.vertices, b.vertices])
        faces = np.vstack([a.faces, b.faces + 4])
        validate_polyhedron(Polyhedron(vertices, faces))
