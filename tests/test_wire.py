"""The versioned wire schema: round trips, strictness, and json safety.

The JSON wire contract (``QuerySpec.to_wire``/``from_wire``,
``QueryResult.to_wire``/``from_wire``) is the canonical public query
API — these tests pin the properties the serve layer depends on:

* ``from_wire(to_wire(spec))`` is the identity on normalized specs, for
  every query kind;
* strict rejection: unknown fields, missing/unsupported
  ``schema_version``, invalid parameter combinations;
* result round trips preserve pairs, stats ledgers, the funnel (with
  its conservation invariants), completeness, and degraded targets;
* every wire payload is ``json.dumps``-able even when numpy scalars
  leak into stats at the producer side.
"""

import json

import numpy as np
import pytest

from repro.core import EngineConfig, ThreeDPro
from repro.core.errors import WireFormatError
from repro.core.jsonsafe import json_safe
from repro.core.plan import (
    WIRE_SCHEMA_VERSION,
    QueryCompleteness,
    QueryResult,
    QuerySpec,
)
from repro.core.stats import QueryStats

ALL_KIND_SPECS = [
    QuerySpec(kind="intersection", source="b", target="a"),
    QuerySpec(kind="within", source="b", target="a", distance=2.5),
    QuerySpec(kind="knn", source="b", target="a", k=3),
    QuerySpec(kind="nn", source="b", target="a"),  # normalizes to knn k=1
    QuerySpec(kind="containment", source="b", point=(0.5, 1.0, -2.0)),
    QuerySpec(kind="intersection", source="b", target="a", target_ids=(3, 1)),
    QuerySpec(kind="within", source="b", target="a", distance=1.0,
              deadline_ms=250),
]


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", ALL_KIND_SPECS, ids=lambda s: s.kind)
    def test_identity_on_normalized(self, spec):
        wire = spec.to_wire()
        assert wire["schema_version"] == WIRE_SCHEMA_VERSION
        assert QuerySpec.from_wire(wire) == spec.normalized()

    @pytest.mark.parametrize("spec", ALL_KIND_SPECS, ids=lambda s: s.kind)
    def test_wire_is_json_serializable(self, spec):
        parsed = json.loads(json.dumps(spec.to_wire()))
        assert QuerySpec.from_wire(parsed) == spec.normalized()

    def test_nn_normalizes_to_knn_on_wire(self):
        wire = QuerySpec(kind="nn", source="b", target="a").to_wire()
        assert wire["kind"] == "knn"
        assert wire["k"] == 1

    def test_none_fields_omitted(self):
        wire = QuerySpec(kind="intersection", source="b", target="a").to_wire()
        assert "distance" not in wire
        assert "point" not in wire
        assert "deadline_ms" not in wire


class TestSpecStrictness:
    def test_unknown_field_rejected(self):
        wire = QuerySpec(kind="intersection", source="b", target="a").to_wire()
        wire["bogus"] = 1
        with pytest.raises(WireFormatError, match="unknown spec field"):
            QuerySpec.from_wire(wire)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(WireFormatError, match="schema_version"):
            QuerySpec.from_wire({"kind": "intersection", "source": "b", "target": "a"})

    def test_unsupported_schema_version_rejected(self):
        wire = QuerySpec(kind="intersection", source="b", target="a").to_wire()
        wire["schema_version"] = 999
        with pytest.raises(WireFormatError, match="unsupported"):
            QuerySpec.from_wire(wire)

    def test_non_dict_rejected(self):
        with pytest.raises(WireFormatError, match="JSON object"):
            QuerySpec.from_wire([1, 2, 3])

    def test_invalid_combination_rejected(self):
        with pytest.raises(WireFormatError, match="invalid spec"):
            QuerySpec.from_wire({
                "schema_version": WIRE_SCHEMA_VERSION,
                "kind": "within", "source": "b", "target": "a",
                # within requires a distance
            })

    def test_probe_spec_not_serializable(self, small_scene):
        spec = QuerySpec(
            kind="intersection", source="b", probe=small_scene.nuclei_a[0]
        )
        with pytest.raises(WireFormatError, match="probe"):
            spec.to_wire()

    def test_progress_hook_not_serializable(self):
        spec = QuerySpec(
            kind="intersection", source="b", target="a",
            progress=lambda tid, lod, matches: None,
        )
        with pytest.raises(WireFormatError, match="in-process"):
            spec.to_wire()


@pytest.fixture(scope="module")
def wire_engine(datasets):
    engine = ThreeDPro(EngineConfig(paradigm="fpr"))
    for dataset in datasets.values():
        engine.load_dataset(dataset)
    return engine


RESULT_SPECS = [
    QuerySpec(kind="intersection", source="nuclei_b", target="nuclei_a"),
    QuerySpec(kind="within", source="nuclei_b", target="nuclei_a", distance=2.0),
    QuerySpec(kind="knn", source="vessels", target="nuclei_a", k=2),
]


class TestResultRoundTrip:
    @pytest.mark.parametrize("spec", RESULT_SPECS, ids=lambda s: s.kind)
    def test_pairs_stats_completeness_survive(self, wire_engine, spec):
        result = wire_engine.execute(spec)
        back = QueryResult.from_wire(json.loads(json.dumps(result.to_wire())))
        assert back.pairs == result.pairs
        assert back.total_matches == result.total_matches
        assert back.spec == result.spec
        assert back.completeness == result.completeness
        assert back.degraded_targets == result.degraded_targets
        assert back.stats.results == result.stats.results
        assert back.stats.candidates == result.stats.candidates
        assert dict(back.stats.pairs_evaluated_by_lod) == dict(
            result.stats.pairs_evaluated_by_lod
        )
        assert dict(back.stats.pairs_pruned_by_lod) == dict(
            result.stats.pairs_pruned_by_lod
        )

    @pytest.mark.parametrize("spec", RESULT_SPECS, ids=lambda s: s.kind)
    def test_funnel_conservation_after_round_trip(self, wire_engine, spec):
        """The funnel/ledger invariants must give the same verdict remotely."""
        result = wire_engine.execute(spec)
        assert result.funnel.violations(result.stats, strict=True) == []
        back = QueryResult.from_wire(json.loads(json.dumps(result.to_wire())))
        assert back.funnel.violations(back.stats, strict=True) == []
        assert back.funnel.as_dict() == result.funnel.as_dict()

    def test_result_version_checked(self, wire_engine):
        result = wire_engine.execute(RESULT_SPECS[0])
        wire = result.to_wire()
        wire["schema_version"] = 2
        with pytest.raises(WireFormatError, match="unsupported"):
            QueryResult.from_wire(wire)


class TestJsonSafeBoundary:
    """Satellite: numpy scalars normalize to builtins at as_dict boundaries."""

    def test_stats_with_numpy_values_dump_clean(self):
        stats = QueryStats(query="q")
        stats.results = np.int64(7)
        stats.decoded_vertices = np.int32(123)
        stats.total_seconds = np.float64(0.25)
        stats.pairs_evaluated_by_lod[np.int64(2)] = np.int64(5)
        stats.pairs_pruned_by_lod[np.int64(2)] = np.int64(3)
        stats.funnel.candidates = np.int64(9)
        stats.funnel.stage(np.int64(1)).confirmed = np.int64(2)
        payload = stats.as_dict()
        encoded = json.dumps(payload)  # must not raise
        decoded = json.loads(encoded)
        assert decoded["results"] == 7
        assert decoded["total_seconds"] == 0.25
        assert decoded["pairs_evaluated_by_lod"]["2"] == 5
        assert type(payload["results"]) is int
        assert type(payload["total_seconds"]) is float

    def test_completeness_with_numpy_values_dump_clean(self):
        comp = QueryCompleteness(
            targets_total=np.int64(4),
            targets_finished=np.int64(4),
            max_lod_reached=np.int64(3),
            deadline_headroom_ratio=np.float64(0.5),
        )
        payload = comp.as_dict()
        json.dumps(payload)  # must not raise
        assert type(payload["targets_total"]) is int
        assert type(payload["deadline_headroom_ratio"]) is float

    def test_json_safe_handles_containers(self):
        out = json_safe({
            np.int64(1): [np.float64(2.5), (np.int64(3), "x")],
            "arr": np.arange(3),
            "set": {np.int64(2), np.int64(1)},
        })
        assert out == {1: [2.5, [3, "x"]], "arr": [0, 1, 2], "set": [1, 2]}
        json.dumps(out)
