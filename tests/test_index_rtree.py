"""Tests for the STR R-tree and its distance-range traversals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, box_maxdist, box_mindist
from repro.index import RTree, RTreeEntry


def grid_boxes(n_per_axis=5, size=0.4, spacing=2.0):
    """A cubic lattice of small boxes, payloads are lattice indices."""
    boxes = []
    for i in range(n_per_axis):
        for j in range(n_per_axis):
            for k in range(n_per_axis):
                low = (i * spacing, j * spacing, k * spacing)
                high = tuple(v + size for v in low)
                boxes.append(AABB(low, high))
    return boxes


@pytest.fixture(scope="module")
def lattice():
    boxes = grid_boxes()
    return boxes, RTree.from_boxes(boxes, leaf_capacity=8)


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.query_intersecting(AABB((0, 0, 0), (1, 1, 1))) == []
        assert tree.query_nn_candidates(AABB((0, 0, 0), (1, 1, 1))) == []

    def test_single_entry(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        tree = RTree([RTreeEntry(box, "only")])
        assert tree.query_intersecting(box) == ["only"]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RTree([], leaf_capacity=1)

    def test_height_grows_logarithmically(self, lattice):
        _boxes, tree = lattice
        assert 2 <= tree.height <= 4  # 125 entries, capacity 8


class TestIntersecting:
    def test_point_query_hits_one(self, lattice):
        boxes, tree = lattice
        probe = AABB((0.1, 0.1, 0.1), (0.2, 0.2, 0.2))
        assert tree.query_intersecting(probe) == [0]

    def test_range_query_matches_bruteforce(self, lattice):
        boxes, tree = lattice
        probe = AABB((1.0, 1.0, 1.0), (5.0, 3.0, 7.0))
        expected = {i for i, b in enumerate(boxes) if b.intersects(probe)}
        assert set(tree.query_intersecting(probe)) == expected

    def test_miss_everything(self, lattice):
        _boxes, tree = lattice
        probe = AABB((100, 100, 100), (101, 101, 101))
        assert tree.query_intersecting(probe) == []

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_random_queries_match_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        lows = rng.uniform(0, 10, size=(60, 3))
        boxes = [AABB(tuple(lo), tuple(lo + rng.uniform(0.1, 2, size=3))) for lo in lows]
        tree = RTree.from_boxes(boxes, leaf_capacity=4)
        qlo = rng.uniform(0, 10, size=3)
        probe = AABB(tuple(qlo), tuple(qlo + rng.uniform(0.5, 4, size=3)))
        expected = {i for i, b in enumerate(boxes) if b.intersects(probe)}
        assert set(tree.query_intersecting(probe)) == expected


class TestWithin:
    def test_definite_plus_candidates_cover_all_near_boxes(self, lattice):
        boxes, tree = lattice
        probe = AABB((0, 0, 0), (0.4, 0.4, 0.4))
        threshold = 2.0
        result = tree.query_within(probe, threshold)
        returned = set(result.definite) | set(result.candidates)
        must_have = {
            i for i, b in enumerate(boxes) if box_mindist(b, probe) <= threshold
        }
        # Nothing beyond the threshold may be reported as definite...
        for payload in result.definite:
            assert box_maxdist(boxes[payload], probe) <= threshold
        # ...and every box possibly within range must be returned somewhere.
        assert must_have == returned

    def test_zero_threshold_equals_touching(self, lattice):
        boxes, tree = lattice
        probe = AABB((0.4, 0.0, 0.0), (2.0, 0.4, 0.4))
        result = tree.query_within(probe, 0.0)
        returned = set(result.definite) | set(result.candidates)
        expected = {i for i, b in enumerate(boxes) if box_mindist(b, probe) == 0.0}
        assert returned == expected

    def test_huge_threshold_returns_everything(self, lattice):
        boxes, tree = lattice
        probe = AABB((0, 0, 0), (0.1, 0.1, 0.1))
        result = tree.query_within(probe, 1e6)
        assert len(result.definite) == len(boxes)
        assert not result.candidates


class TestNearestNeighbor:
    def test_true_nn_always_among_candidates(self, lattice):
        boxes, tree = lattice
        rng = np.random.default_rng(42)
        for _ in range(20):
            lo = rng.uniform(-2, 10, size=3)
            probe = AABB(tuple(lo), tuple(lo + 0.3))
            candidates = tree.query_nn_candidates(probe)
            assert candidates
            payloads = {c[0] for c in candidates}
            true_nn = min(range(len(boxes)), key=lambda i: box_mindist(boxes[i], probe))
            assert true_nn in payloads

    def test_candidate_ranges_are_consistent(self, lattice):
        boxes, tree = lattice
        probe = AABB((3.0, 3.0, 3.0), (3.3, 3.3, 3.3))
        for payload, mind, maxd in tree.query_nn_candidates(probe):
            assert mind == pytest.approx(box_mindist(boxes[payload], probe))
            assert maxd == pytest.approx(box_maxdist(boxes[payload], probe))
            assert mind <= maxd

    def test_minmax_pruning_filters_far_objects(self, lattice):
        boxes, tree = lattice
        probe = AABB((0, 0, 0), (0.4, 0.4, 0.4))
        candidates = tree.query_nn_candidates(probe)
        # The probe overlaps box 0 whose MAXDIST is tiny, so distant
        # lattice boxes must all have been pruned.
        assert len(candidates) < len(boxes) / 4

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_nn_candidates_sound_on_random_data(self, seed):
        rng = np.random.default_rng(seed)
        lows = rng.uniform(0, 10, size=(40, 3))
        boxes = [AABB(tuple(lo), tuple(lo + rng.uniform(0.1, 1, size=3))) for lo in lows]
        tree = RTree.from_boxes(boxes, leaf_capacity=4)
        qlo = rng.uniform(0, 10, size=3)
        probe = AABB(tuple(qlo), tuple(qlo + 0.2))
        payloads = {c[0] for c in tree.query_nn_candidates(probe)}
        # Any object whose MINDIST is <= every other object's MAXDIST
        # could be the nearest neighbor and must be a candidate.
        minmax = min(box_maxdist(b, probe) for b in boxes)
        for i, b in enumerate(boxes):
            if box_mindist(b, probe) <= minmax:
                assert i in payloads


class TestDynamicInsert:
    def test_insert_into_empty(self):
        tree = RTree([])
        tree.insert(RTreeEntry(AABB((0, 0, 0), (1, 1, 1)), "a"))
        assert len(tree) == 1
        assert tree.query_intersecting(AABB((0, 0, 0), (2, 2, 2))) == ["a"]

    def test_insert_many_matches_bruteforce(self):
        rng = np.random.default_rng(13)
        tree = RTree([], leaf_capacity=4)
        boxes = []
        for i in range(120):
            lo = rng.uniform(0, 20, size=3)
            box = AABB(tuple(lo), tuple(lo + rng.uniform(0.2, 2, size=3)))
            boxes.append(box)
            tree.insert(RTreeEntry(box, i))
        assert len(tree) == 120
        probe = AABB((5, 5, 5), (9, 9, 9))
        expected = {i for i, b in enumerate(boxes) if b.intersects(probe)}
        assert set(tree.query_intersecting(probe)) == expected

    def test_insert_after_bulk_load(self):
        boxes = grid_boxes(3)
        tree = RTree.from_boxes(boxes, leaf_capacity=4)
        extra = AABB((100, 100, 100), (101, 101, 101))
        tree.insert(RTreeEntry(extra, "extra"))
        assert tree.query_intersecting(AABB((99, 99, 99), (102, 102, 102))) == ["extra"]
        # Old entries still reachable.
        assert tree.query_intersecting(AABB((0, 0, 0), (0.5, 0.5, 0.5))) == [0]

    def test_nn_traversal_after_inserts(self):
        rng = np.random.default_rng(14)
        tree = RTree([], leaf_capacity=4)
        boxes = []
        for i in range(60):
            lo = rng.uniform(0, 15, size=3)
            box = AABB(tuple(lo), tuple(lo + 0.5))
            boxes.append(box)
            tree.insert(RTreeEntry(box, i))
        probe = AABB((7, 7, 7), (7.2, 7.2, 7.2))
        payloads = {c[0] for c in tree.query_nn_candidates(probe)}
        true_nn = min(range(len(boxes)), key=lambda i: box_mindist(boxes[i], probe))
        assert true_nn in payloads

    def test_within_traversal_after_inserts(self):
        tree = RTree([], leaf_capacity=4)
        boxes = grid_boxes(3)
        for i, box in enumerate(boxes):
            tree.insert(RTreeEntry(box, i))
        probe = AABB((0, 0, 0), (0.4, 0.4, 0.4))
        result = tree.query_within(probe, 2.0)
        returned = set(result.definite) | set(result.candidates)
        expected = {i for i, b in enumerate(boxes) if box_mindist(b, probe) <= 2.0}
        assert returned == expected
