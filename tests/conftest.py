"""Shared fixtures: small deterministic scenes and compressed datasets.

Scene generation and PPVP encoding are the expensive parts of the
integration tests, so everything here is session-scoped and kept small
(80-face nuclei, one-or-two small vessels).
"""

import pytest

from repro.compression import PPVPEncoder
from repro.datagen import make_tissue_scene
from repro.datagen.vessels import VesselSpec
from repro.storage import Dataset

SMALL_VESSEL = VesselSpec(bifurcations=2, points_per_branch=4, segments=6)


@pytest.fixture(scope="session")
def small_scene():
    """40 nuclei pairs + 2 small vessels (seed 7)."""
    return make_tissue_scene(
        n_nuclei=40,
        n_vessels=2,
        seed=7,
        region=90.0,
        nucleus_subdivisions=1,
        vessel_spec=SMALL_VESSEL,
    )


@pytest.fixture(scope="session")
def encoder():
    return PPVPEncoder(max_lods=6, rounds_per_lod=2)


@pytest.fixture(scope="session")
def datasets(small_scene, encoder):
    """Compressed datasets keyed by the paper's names."""
    return {
        "nuclei_a": Dataset.from_polyhedra("nuclei_a", small_scene.nuclei_a, encoder),
        "nuclei_b": Dataset.from_polyhedra("nuclei_b", small_scene.nuclei_b, encoder),
        "vessels": Dataset.from_polyhedra("vessels", small_scene.vessels, encoder),
    }
